// Package chaos is a deterministic, seed-driven cluster fault-injection
// harness with a block-level history checker. A scenario assembles an
// in-process cluster (monitor + OSDs + clients over the in-proc
// transport), drives a recorded random-write workload against it, and
// fires a seeded schedule of faults at workload-progress marks: OSD
// crash/restart (process state dropped, recovery from the NVM oplog +
// COS), torn vectored device writes, messenger faults (dropped, delayed
// and duplicated frames, severed peer connections) and NVM corruption
// before recovery.
//
// The checker validates the paper's central claim — ACK-after-NVM-log is
// safe (PAPER.md §III): every acknowledged write must survive crash +
// REDO replay, reads must honor read-your-writes through the index cache
// and never observe a torn mix of two block versions, and the replicas
// of every object must converge once the cluster heals.
//
// Everything random — workload content, fault schedules, messenger fault
// streams, corruption bytes — derives from one seed, printed on failure:
//
//	go test ./internal/chaos -run 'TestScenarios/<name>' -chaos.seed=<seed>
//
// replays the same decisions (goroutine interleaving aside).
package chaos

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rebloc/internal/core"
	"rebloc/internal/device"
	"rebloc/internal/messenger"
	"rebloc/internal/osd"
)

// Options sizes one scenario's cluster and workload.
type Options struct {
	// OSDs, Replicas, PGs shape the cluster (defaults 3 / 2 / 16).
	OSDs     int
	Replicas int
	PGs      uint32
	// Objects × BlocksPerObject × BlockBytes is the workload's address
	// space (defaults 8 × 4 × 4096). Each block has exactly one writer,
	// so per-block history is totally ordered by construction.
	Objects         int
	BlocksPerObject int
	BlockBytes      uint32
	// Writers workers issue OpsPerWriter operations each (defaults 4 ×
	// 80); every ReadEvery-th op is a read-your-writes probe instead of
	// a write (default 5, 0 disables).
	Writers      int
	OpsPerWriter int
	ReadEvery    int
	// Zipfian skews each writer's block picks so a hot set stays
	// read-cache-resident while overwrites race the reads (the
	// stale-cache-read scenario's whole point).
	Zipfian bool
	// HeartbeatTimeout tunes monitor failure detection (default 600ms —
	// kills must be noticed well within a scenario).
	HeartbeatTimeout time.Duration
}

func (o *Options) fill() {
	if o.OSDs <= 0 {
		o.OSDs = 3
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.PGs == 0 {
		o.PGs = 16
	}
	if o.Objects <= 0 {
		o.Objects = 8
	}
	if o.BlocksPerObject <= 0 {
		o.BlocksPerObject = 4
	}
	if o.BlockBytes == 0 {
		o.BlockBytes = 4096
	}
	if o.Writers <= 0 {
		o.Writers = 4
	}
	if o.OpsPerWriter <= 0 {
		o.OpsPerWriter = 80
	}
	if o.ReadEvery == 0 {
		o.ReadEvery = 5
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 600 * time.Millisecond
	}
}

// Event is one scheduled fault. At is a fraction of the workload's total
// operation count in [0, 1]; the coordinator fires the event once issued
// operations cross the mark (events left over when the workload ends fire
// in order at the end, so a schedule always executes fully).
type Event struct {
	At   float64
	Name string
	Do   func(h *Harness)
}

// Scenario is one table entry: a cluster/workload shape plus a fault
// schedule built against the live harness.
type Scenario struct {
	Name string
	// DefaultSeed drives the run unless -chaos.seed overrides it.
	DefaultSeed int64
	Opts        Options
	Schedule    func(h *Harness) []Event
}

// Harness is one scenario run: cluster, fault hooks, recorded history.
type Harness struct {
	t    *testing.T
	Seed int64
	opts Options
	name string

	cluster   *core.Cluster
	faulty    *messenger.Faulty
	devFaults []*device.Fault
	dead      []bool // per-OSD killed state; coordinator goroutine only

	hist   *history
	issued atomic.Int64

	readErrs  atomic.Int64 // tolerated (indeterminate) read failures
	writeErrs atomic.Int64 // tolerated (indeterminate) write failures

	mu   sync.Mutex
	errs []string
}

// fail records an invariant violation (checked at the end of the run).
func (h *Harness) fail(format string, args ...any) {
	h.mu.Lock()
	h.errs = append(h.errs, fmt.Sprintf(format, args...))
	h.mu.Unlock()
}

// Run executes one scenario under the given seed and fails t with a
// reproducing command line if any invariant broke.
func Run(t *testing.T, sc Scenario, seed int64) {
	opts := sc.Opts
	opts.fill()
	h := &Harness{
		t:         t,
		Seed:      seed,
		opts:      opts,
		name:      sc.Name,
		devFaults: make([]*device.Fault, opts.OSDs),
		dead:      make([]bool, opts.OSDs),
		hist:      newHistory(opts.Objects, opts.BlocksPerObject),
	}
	t.Logf("chaos: scenario %s seed=%d", sc.Name, seed)

	cluster, err := core.New(core.Options{
		OSDs:     opts.OSDs,
		Mode:     osd.ModeProposed,
		Replicas: opts.Replicas,
		PGs:      opts.PGs,
		// Always run the sharded top half multi-shard, even on small CI
		// hosts where the per-core default would collapse to one shard:
		// faults must hit cross-shard routing, per-shard group commit and
		// the lock-free dirty queue, not a degenerate single-queue layout.
		Shards: 4,
		DeviceBytes:      256 << 20,
		NVMBytes:         64 << 20,
		NVMCrashSim:      true,
		FlushThreshold:   8,
		FlushInterval:    2 * time.Millisecond,
		HeartbeatTimeout: opts.HeartbeatTimeout,
		// Schedules that force scrubs (bit-rot) must not be paced like a
		// production background daemon — a throttled scrub would still be
		// crawling when the checker runs.
		ScrubRate: 4096,
		WrapTransport: func(tr messenger.Transport) messenger.Transport {
			h.faulty = messenger.NewFaulty(tr)
			return h.faulty
		},
		WrapDevice: func(i int, d device.Device) device.Device {
			f := device.NewFault(d)
			h.devFaults[i] = f
			return f
		},
	})
	if err != nil {
		t.Fatalf("chaos: scenario %s seed=%d: cluster: %v", sc.Name, seed, err)
	}
	h.cluster = cluster
	defer cluster.Close()

	var events []Event
	if sc.Schedule != nil {
		events = sc.Schedule(h)
	}
	h.runWorkload(events)
	h.heal()
	h.check()

	t.Logf("chaos: %s done: %d ops issued, %d write errs, %d read errs (tolerated)",
		sc.Name, h.issued.Load(), h.writeErrs.Load(), h.readErrs.Load())
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.errs) > 0 {
		msg := ""
		for _, e := range h.errs {
			msg += "  - " + e + "\n"
		}
		t.Fatalf("chaos: scenario %s FAILED with seed %d\nreproduce: go test ./internal/chaos -run 'TestScenarios/%s' -chaos.seed=%d\n%s",
			sc.Name, seed, sc.Name, seed, msg)
	}
}

// runWorkload starts the writers and fires scheduled events as the
// issued-operation count crosses their progress marks.
func (h *Harness) runWorkload(events []Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	total := h.opts.Writers * h.opts.OpsPerWriter

	var wg sync.WaitGroup
	for w := 0; w < h.opts.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h.writer(w)
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	fire := func(ev Event) {
		prog := float64(h.issued.Load()) / float64(total)
		h.t.Logf("chaos[%s]: @%3.0f%% firing %s", h.name, prog*100, ev.Name)
		ev.Do(h)
	}
	idx := 0
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			// The workload finished with events still pending (it
			// outpaced its schedule); execute the tail so every scenario
			// runs its full fault sequence before healing.
			for ; idx < len(events); idx++ {
				fire(events[idx])
			}
			return
		case <-ticker.C:
			prog := float64(h.issued.Load()) / float64(total)
			for idx < len(events) && events[idx].At <= prog {
				fire(events[idx])
				idx++
			}
		}
	}
}

// heal disarms every fault, brings dead OSDs back and drains all staged
// state, leaving a quiet, fully-replicated cluster for the checker.
func (h *Harness) heal() {
	h.faulty.SetFaults(nil)
	for _, f := range h.devFaults {
		if f != nil {
			f.Disarm()
			f.DisarmCorruptReads()
		}
	}
	for i := range h.dead {
		if !h.dead[i] {
			continue
		}
		var err error
		for attempt := 0; attempt < 5; attempt++ {
			if err = h.cluster.RestartOSD(i); err == nil {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		if err != nil {
			h.fail("heal: restart osd %d: %v", i, err)
			return
		}
		h.dead[i] = false
	}
	// All daemons must rejoin the map.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if len(h.cluster.Map().UpOSDs()) == h.opts.OSDs {
			break
		}
		if time.Now().After(deadline) {
			h.fail("heal: only %d/%d OSDs up after 30s", len(h.cluster.Map().UpOSDs()), h.opts.OSDs)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Drain staged state everywhere. Transient failures are expected
	// while backfills finish; persistent failure is a finding.
	var err error
	for {
		if err = h.cluster.FlushAll(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			h.fail("heal: FlushAll never succeeded: %v", err)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	// One settling pass: backfills triggered by the restarts above may
	// have re-staged entries after the first flush.
	time.Sleep(50 * time.Millisecond)
	if err := h.cluster.FlushAll(); err != nil {
		h.fail("heal: settling FlushAll: %v", err)
	}
}

// --- fault primitives used by scenario schedules ---

// Kill crashes OSD i; with powerLoss the NVM bank also reverts to its
// last persisted image (kill alone models a daemon crash, kill + power
// loss a node losing power mid-drain).
func (h *Harness) Kill(i int, powerLoss bool) {
	if h.dead[i] {
		return
	}
	h.cluster.KillOSD(i)
	if powerLoss {
		h.cluster.Bank(i).Crash()
	}
	h.dead[i] = true
}

// Restart brings a killed OSD back on its original device and bank.
func (h *Harness) Restart(i int) {
	if !h.dead[i] {
		return
	}
	if err := h.cluster.RestartOSD(i); err != nil {
		h.fail("restart osd %d: %v", i, err)
		return
	}
	h.dead[i] = false
}

// CorruptOplogs scribbles pseudorandom bytes over up to n of OSD i's
// carved oplog regions: the first gets a corrupt header (salvage must
// reformat), the rest a corrupt body (salvage must truncate). The OSD
// must be dead — corrupting under a live daemon is a data race, not a
// fault model.
func (h *Harness) CorruptOplogs(i, n int) {
	if !h.dead[i] {
		h.fail("CorruptOplogs(%d) on a live OSD", i)
		return
	}
	bank := h.cluster.Bank(i)
	hit := 0
	for pg := uint32(0); pg < h.opts.PGs && hit < n; pg++ {
		r, err := bank.Region(fmt.Sprintf("osd%d.oplog.%d", i, pg))
		if err != nil {
			continue
		}
		if hit == 0 {
			// Header corruption: magic survives often enough that bounds
			// go garbage — the header-reinit salvage path.
			_ = r.Corrupt(4, 24, h.Seed+int64(pg))
		} else {
			// Body corruption just past the header — the truncate-at-
			// first-bad-frame salvage path.
			_ = r.Corrupt(64, 256, h.Seed+int64(pg))
		}
		hit++
	}
}

// SetFaults arms (nil disarms) the messenger fault policy. The monitor
// address is always excluded: dropping boot replies wedges daemons in
// ways no storage recovery protocol is expected to handle.
func (h *Harness) SetFaults(f *messenger.Faults) {
	if f != nil {
		f.Exclude = append(f.Exclude, "mon.")
		if f.Seed == 0 {
			f.Seed = h.Seed
		}
	}
	h.faulty.SetFaults(f)
}

// SlowOSD arms a delay-only fault policy scoped to OSD i's address: every
// frame received on its connections — the mutations it ingests and the
// acks its peers read back from it — is delayed with probability prob by
// up to max. The rest of the cluster is untouched. This models one slow
// replica, the case the per-peer credit/EWMA isolation must absorb
// without dragging the primary's commit path down with it.
func (h *Harness) SlowOSD(i int, prob float64, max time.Duration) {
	addr := h.cluster.OSDAddr(i)
	if addr == "" {
		return
	}
	h.SetFaults(&messenger.Faults{
		DelayProb: prob,
		DelayMax:  max,
		Only:      []string{addr},
	})
	h.t.Logf("chaos[%s]: slowed osd %d (delay %.0f%% up to %s)", h.name, i, prob*100, max)
}

// Sever closes every connection of OSD i (peers, clients) at its current
// address. Reconnects are allowed — a sever is a network blip, not a
// partition.
func (h *Harness) Sever(i int) {
	addr := h.cluster.OSDAddr(i)
	if addr == "" {
		return
	}
	n := h.faulty.Sever(addr)
	h.t.Logf("chaos[%s]: severed %d conns of osd %d", h.name, n, i)
}

// ArmDevice makes OSD i's device fail every write from the n-th one on
// with err — mid-vector, so a batched COS submit tears.
func (h *Harness) ArmDevice(i int, after int64, err error) {
	h.devFaults[i].Arm(after, err)
}

// DisarmDevice stops OSD i's device faults.
func (h *Harness) DisarmDevice(i int) {
	h.devFaults[i].Disarm()
}

// ArmCorruptReads turns OSD i's device into silently rotting media: after
// the first after reads, every everyK-th read returns a payload with one
// bit flipped. Data at rest is untouched — only the read path lies, which
// is exactly what the block-checksum + read-repair machinery must catch
// before a single corrupt byte reaches a client.
func (h *Harness) ArmCorruptReads(i int, after, everyK int64) {
	h.devFaults[i].ArmCorruptReads(after, everyK)
}

// DisarmCorruptReads stops OSD i's read corruption (heal also disarms it
// as a backstop, but schedules disarm explicitly so post-rot events run
// against honest media).
func (h *Harness) DisarmCorruptReads(i int) {
	h.devFaults[i].DisarmCorruptReads()
}

// CorruptedReads reports how many reads OSD i's device actually corrupted.
func (h *Harness) CorruptedReads(i int) int64 {
	return h.devFaults[i].CorruptedReads()
}

// DeepScrubAll forces a synchronous deep scrub pass on every live OSD and
// returns the total divergences found. Each OSD scrubs only the PGs it
// leads, so the union covers every PG exactly once.
func (h *Harness) DeepScrubAll() int {
	found := 0
	for i := 0; i < h.opts.OSDs; i++ {
		if h.dead[i] {
			continue
		}
		if o := h.cluster.OSD(i); o != nil {
			found += o.ScrubNow(true)
		}
	}
	return found
}
