package chaos

import (
	"errors"
	"time"

	"rebloc/internal/messenger"
)

// errInjected is the error armed device faults surface; REDO replay after
// restart must make the torn submit whole again.
var errInjected = errors.New("chaos: injected device error")

// Scenarios is the smoke matrix `make chaos` runs: every entry is one
// seeded fault schedule over the common workload, each aimed at a
// distinct recovery path. Event marks are fractions of the workload's
// total operation count.
func Scenarios() []Scenario {
	return []Scenario{
		{
			// OSD 1 loses power twice mid-drain: staged oplog entries must
			// replay from the durable NVM image (REDO), and the Freeze path
			// must keep the killed daemon's in-flight drain from completing
			// entries the crash already disowned.
			Name:        "crash-during-drain",
			DefaultSeed: 101,
			Schedule: func(h *Harness) []Event {
				return []Event{
					{At: 0.30, Name: "kill osd1 (power loss)", Do: func(h *Harness) { h.Kill(1, true) }},
					{At: 0.50, Name: "restart osd1", Do: func(h *Harness) { h.Restart(1) }},
					{At: 0.70, Name: "kill osd1 again (power loss)", Do: func(h *Harness) { h.Kill(1, true) }},
					{At: 0.85, Name: "restart osd1", Do: func(h *Harness) { h.Restart(1) }},
				}
			},
		},
		{
			// OSD 1's device starts failing writes a few writes into the
			// faulted window, so a vectored COS submit tears mid-vector.
			// The torn suffix must never become visible: the oplog keeps
			// the entries staged until the store submit succeeds.
			Name:        "torn-vectored-write",
			DefaultSeed: 202,
			Schedule: func(h *Harness) []Event {
				return []Event{
					{At: 0.25, Name: "arm device 1 (tear after 5 writes)", Do: func(h *Harness) {
						h.ArmDevice(1, 5, errInjected)
					}},
					{At: 0.60, Name: "disarm device 1", Do: func(h *Harness) { h.DisarmDevice(1) }},
					// Restart strictly after disarm: boot-time REDO replays
					// the staged tail through the (now healthy) device.
					{At: 0.75, Name: "kill osd1 (power loss)", Do: func(h *Harness) { h.Kill(1, true) }},
					{At: 0.85, Name: "restart osd1", Do: func(h *Harness) { h.Restart(1) }},
				}
			},
		},
		{
			// OSD 2's connections are repeatedly severed (replication acks
			// and client traffic die mid-flight), then the daemon is killed
			// and restarted so the map moves and a real backfill runs.
			Name:        "replica-sever-backfill",
			DefaultSeed: 303,
			Schedule: func(h *Harness) []Event {
				sever := func(h *Harness) { h.Sever(2) }
				return []Event{
					{At: 0.20, Name: "sever osd2", Do: sever},
					{At: 0.35, Name: "sever osd2", Do: sever},
					{At: 0.50, Name: "sever osd2", Do: sever},
					{At: 0.70, Name: "kill osd2 (power loss)", Do: func(h *Harness) { h.Kill(2, true) }},
					{At: 0.85, Name: "restart osd2 (backfill)", Do: func(h *Harness) { h.Restart(2) }},
				}
			},
		},
		{
			// Power loss plus rotted NVM: one oplog region's header and two
			// more regions' bodies are scribbled while the daemon is down.
			// Salvage recovery must truncate/reformat instead of refusing to
			// boot, and the boot-time backfill must resync the lost suffix
			// from the surviving replica.
			Name:        "nvm-corruption",
			DefaultSeed: 404,
			Schedule: func(h *Harness) []Event {
				return []Event{
					{At: 0.40, Name: "kill osd1 + corrupt oplog NVM", Do: func(h *Harness) {
						h.Kill(1, true)
						h.CorruptOplogs(1, 3)
					}},
					{At: 0.55, Name: "restart osd1 (salvage)", Do: func(h *Harness) { h.Restart(1) }},
				}
			},
		},
		{
			// At-least-once delivery: 30% of frames are delivered twice for
			// most of the run (duplicate ReplAcks, duplicate replicated
			// mutations), with a crash-restart in the middle. R=3 so every
			// write fans out to two peers.
			Name:        "duplicated-frames",
			DefaultSeed: 505,
			Opts:        Options{Replicas: 3},
			Schedule: func(h *Harness) []Event {
				return []Event{
					{At: 0.10, Name: "arm dup 30%", Do: func(h *Harness) {
						h.SetFaults(&messenger.Faults{DupProb: 0.3})
					}},
					{At: 0.45, Name: "kill osd2 (power loss)", Do: func(h *Harness) { h.Kill(2, true) }},
					{At: 0.60, Name: "restart osd2", Do: func(h *Harness) { h.Restart(2) }},
					{At: 0.80, Name: "disarm faults", Do: func(h *Harness) { h.SetFaults(nil) }},
				}
			},
		},
		{
			// Rolling restarts across a 4-OSD cluster, power loss on the odd
			// ones: peering, REDO and backfill under continuous load, every
			// daemon taking a turn.
			Name:        "restart-storm",
			DefaultSeed: 606,
			Opts:        Options{OSDs: 4, OpsPerWriter: 100},
			Schedule: func(h *Harness) []Event {
				var evs []Event
				marks := []float64{0.15, 0.35, 0.55, 0.75}
				for i := 0; i < 4; i++ {
					i := i
					evs = append(evs,
						Event{At: marks[i], Name: "kill", Do: func(h *Harness) { h.Kill(i, i%2 == 1) }},
						Event{At: marks[i] + 0.10, Name: "restart", Do: func(h *Harness) { h.Restart(i) }},
					)
				}
				return evs
			},
		},
		{
			// Read-heavy zipfian workload racing overwrites of the same hot
			// blocks, with a power-loss crash+restart in the middle: the NVM
			// read cache must never serve pre-overwrite bytes (strict
			// stage-time invalidation) or pre-crash bytes (the cache region
			// is volatile, so power loss must revert it and the restarted
			// daemon must boot cold). The writers' read-your-writes probes
			// check every read inline; the end-of-run checker proves every
			// block matches its highest acknowledged sequence.
			Name:        "stale-cache-read",
			DefaultSeed: 808,
			Opts:        Options{ReadEvery: 2, Zipfian: true, OpsPerWriter: 120},
			Schedule: func(h *Harness) []Event {
				return []Event{
					{At: 0.35, Name: "kill osd1 (power loss)", Do: func(h *Harness) { h.Kill(1, true) }},
					{At: 0.55, Name: "restart osd1 (cold cache)", Do: func(h *Harness) { h.Restart(1) }},
					{At: 0.75, Name: "kill osd0 (power loss)", Do: func(h *Harness) { h.Kill(0, true) }},
					{At: 0.90, Name: "restart osd0 (cold cache)", Do: func(h *Harness) { h.Restart(0) }},
				}
			},
		},
		{
			// One replica turns slow (every frame it receives or acks is
			// delayed tens of ms) for the middle half of the run, R=3. The
			// per-peer credit/EWMA isolation must clamp its credit window
			// so writes touching it fail fast (retryable StatusAgain)
			// instead of queueing unboundedly — the primaries' shard
			// goroutines keep moving, and crucially no write is ever
			// ACKed around the slow peer. Once the delay lifts, acks
			// decay the EWMA and the full credit line returns. The
			// end-of-run convergence check proves nacked fan-outs were
			// repaired — no acknowledged write may be missing anywhere.
			Name:        "slow-replica",
			DefaultSeed: 909,
			Opts:        Options{Replicas: 3, OpsPerWriter: 100},
			Schedule: func(h *Harness) []Event {
				return []Event{
					{At: 0.20, Name: "slow osd2 (100% delay up to 40ms)", Do: func(h *Harness) {
						h.SlowOSD(2, 1.0, 40*time.Millisecond)
					}},
					{At: 0.70, Name: "heal osd2", Do: func(h *Harness) { h.SetFaults(nil) }},
				}
			},
		},
		{
			// Silent bit rot: OSD 1's device starts lying on the read path —
			// every other read comes back with a bit flipped while the data
			// at rest stays intact. The at-rest block checksums must catch
			// every rotten read (served reads answer from a clean replica
			// via read-repair, never with the corrupt bytes), a deep scrub
			// under fire must detect and repair the rot, and after the
			// disarm a final deep scrub plus the end-of-run checker prove
			// the replicas converged with zero corrupt bytes ever ACKed —
			// the workload's stamped blocks make any escape visible.
			Name:        "bit-rot",
			DefaultSeed: 1010,
			Opts:        Options{ReadEvery: 3, OpsPerWriter: 100},
			Schedule: func(h *Harness) []Event {
				return []Event{
					{At: 0.30, Name: "arm corrupt reads on osd1 (every 2nd read)", Do: func(h *Harness) {
						h.ArmCorruptReads(1, 0, 2)
					}},
					{At: 0.55, Name: "deep scrub under rot", Do: func(h *Harness) {
						// Forces device reads of every object on OSD 1 (its
						// own primaries locally, the rest via its peers'
						// scrub pulls), so detection never depends on the
						// workload's cache-miss luck.
						h.DeepScrubAll()
					}},
					{At: 0.75, Name: "disarm corrupt reads", Do: func(h *Harness) {
						h.DisarmCorruptReads(1)
					}},
					{At: 0.90, Name: "verify detection + final deep scrub", Do: func(h *Harness) {
						if h.CorruptedReads(1) == 0 {
							h.fail("bit-rot: the fault never corrupted a read — nothing was exercised")
						}
						if o := h.cluster.OSD(1); o == nil || o.CksumReadErrors.Load() == 0 {
							h.fail("bit-rot: corrupt reads were never caught by a block checksum")
						}
						// Against honest media now: one more pass lets scrub
						// repair any rot-era divergence before the checker's
						// byte-level convergence pass.
						h.DeepScrubAll()
					}},
				}
			},
		},
		{
			// Lossy, laggy network: 5% of frames dropped, 10% delayed up to
			// 5ms, for most of the run. Client and replication retries must
			// mask all of it; no crash involved.
			Name:        "drop-delay-frames",
			DefaultSeed: 707,
			Schedule: func(h *Harness) []Event {
				return []Event{
					{At: 0.10, Name: "arm drop 5% + delay 10%", Do: func(h *Harness) {
						h.SetFaults(&messenger.Faults{
							DropProb:  0.05,
							DelayProb: 0.10,
							DelayMax:  5 * time.Millisecond,
						})
					}},
					{At: 0.70, Name: "disarm faults", Do: func(h *Harness) { h.SetFaults(nil) }},
				}
			},
		},
	}
}
