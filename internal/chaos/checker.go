package chaos

import (
	"bytes"
	"errors"
	"time"

	"rebloc/internal/client"
	"rebloc/internal/store"
)

// check runs after heal() against a quiet, fully-up cluster: every ACKed
// write must be readable (durable across whatever the schedule did),
// content must be untorn, and the replicas of every block must have
// converged byte-for-byte at a version no older than the last ACK.
func (h *Harness) check() {
	h.mu.Lock()
	aborted := len(h.errs) > 0
	h.mu.Unlock()
	if aborted {
		return // heal already failed; reads against a sick cluster just pile on noise
	}
	cl, err := client.New(h.cluster.Transport(), h.cluster.MonAddr(), client.Options{
		// The cluster is healed; generous retries ride out any last
		// backfill rejections (StatusAgain), but errors here are findings.
		RequestTimeout: 2 * time.Second,
		MaxRetries:     400,
		RetryBackoff:   10 * time.Millisecond,
	})
	if err != nil {
		h.fail("checker: client: %v", err)
		return
	}
	defer cl.Close()

	scratch := make([]byte, h.opts.BlockBytes)
	for obj := range h.hist.blocks {
		oid := objectID(obj)
		for blk := range h.hist.blocks[obj] {
			hist := &h.hist.blocks[obj][blk]
			off := uint64(blk) * uint64(h.opts.BlockBytes)
			data, err := cl.Read(oid, off, h.opts.BlockBytes)
			switch {
			case errors.Is(err, client.ErrNotFound):
				if hist.maxAcked > 0 {
					h.fail("check obj %d blk %d: object lost (seq %d was ACKed)", obj, blk, hist.maxAcked)
				}
				continue
			case err != nil:
				h.fail("check obj %d blk %d: read on healed cluster: %v", obj, blk, err)
				continue
			}
			seq, ok := parseBlock(data, scratch, h.Seed, uint32(obj), uint32(blk))
			if !ok {
				h.fail("check obj %d blk %d: torn/corrupt content survived recovery (leading seq %d)", obj, blk, seq)
				continue
			}
			if seq < hist.maxAcked {
				h.fail("check obj %d blk %d: ACKed write lost: final seq %d < acked %d", obj, blk, seq, hist.maxAcked)
			}
			if seq > hist.maxIssued {
				h.fail("check obj %d blk %d: phantom seq %d (issued up to %d)", obj, blk, seq, hist.maxIssued)
			}
		}
	}
	h.checkConvergence()
}

// checkConvergence bypasses the client and reads every block directly
// from each acting replica's object store: after heal + flush the copies
// must be byte-identical and at least as new as the last ACK. Backfills
// may still be settling when this starts, so each object gets retried
// until a shared deadline.
func (h *Harness) checkConvergence() {
	m := h.cluster.Map()
	deadline := time.Now().Add(20 * time.Second)
	scratch := make([]byte, h.opts.BlockBytes)

	for obj := range h.hist.blocks {
		oid := objectID(obj)
		pg := m.PGOf(oid)
		acting, err := m.MapPG(pg)
		if err != nil {
			h.fail("converge obj %d: map pg %d: %v", obj, pg, err)
			continue
		}
	blocks:
		for blk := range h.hist.blocks[obj] {
			hist := &h.hist.blocks[obj][blk]
			off := uint64(blk) * uint64(h.opts.BlockBytes)
			for {
				problem := h.replicasAgree(pg, acting, obj, blk, off, hist, scratch)
				if problem == "" {
					continue blocks
				}
				if time.Now().After(deadline) {
					h.fail("converge obj %d blk %d: %s", obj, blk, problem)
					continue blocks
				}
				// Give the backfill another beat, flush, and retry.
				time.Sleep(50 * time.Millisecond)
				_ = h.cluster.FlushAll()
			}
		}
	}
}

// replicasAgree reads one block from every acting OSD's store and returns
// "" when the copies match and are new enough, else a description of the
// disagreement (retryable by the caller until its deadline).
func (h *Harness) replicasAgree(pg uint32, acting []uint32, obj, blk int, off uint64, hist *blockHist, scratch []byte) string {
	oid := objectID(obj)
	var ref []byte
	for _, id := range acting {
		o := h.cluster.OSD(int(id))
		if o == nil {
			return "acting OSD down after heal"
		}
		data, err := o.Store().Read(pg, oid, off, h.opts.BlockBytes)
		if errors.Is(err, store.ErrNotFound) {
			if hist.maxAcked > 0 {
				return "replica missing the object"
			}
			data = make([]byte, h.opts.BlockBytes) // never written: zeros
		} else if err != nil {
			return "replica store read: " + err.Error()
		}
		seq, ok := parseBlock(data, scratch, h.Seed, uint32(obj), uint32(blk))
		if !ok {
			return "replica holds torn/corrupt content"
		}
		if seq < hist.maxAcked {
			return "replica behind the last ACK"
		}
		if ref == nil {
			ref = append([]byte(nil), data...)
			continue
		}
		if !bytes.Equal(ref, data) {
			return "replicas diverge"
		}
	}
	return ""
}
