package chaos

import (
	"flag"
	"runtime"
	"testing"
)

// -chaos.seed overrides every scenario's default seed; a failing run
// prints the seed and the exact command line that replays it.
var chaosSeed = flag.Int64("chaos.seed", 0, "override scenario seeds (0 = per-scenario defaults)")

// TestScenarios runs the full smoke matrix sequentially (each scenario
// owns a whole in-process cluster; parallelism would just add noise and
// nondeterminism).
func TestScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenarios are not -short tests")
	}
	// The matrix must run with real parallelism: shard loops, bottom-half
	// workers and fault injectors on distinct cores is the interleaving
	// production sees. Pin to NumCPU explicitly so a GOMAXPROCS=1
	// environment (or a caller that lowered it) doesn't quietly serialize
	// the whole suite.
	prev := runtime.GOMAXPROCS(runtime.NumCPU())
	defer runtime.GOMAXPROCS(prev)
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			seed := sc.DefaultSeed
			if *chaosSeed != 0 {
				seed = *chaosSeed
			}
			Run(t, sc, seed)
		})
	}
}

// TestStampRoundTrip pins the workload's stamp format: payloads parse
// back to their own sequence, any byte flip reads as torn, and a mix of
// two versions (a torn write) is rejected.
func TestStampRoundTrip(t *testing.T) {
	const n = 4096
	buf := make([]byte, n)
	scratch := make([]byte, n)

	blockPayload(buf, 42, 3, 1, 7)
	seq, ok := parseBlock(buf, scratch, 42, 3, 1)
	if !ok || seq != 7 {
		t.Fatalf("round trip: seq=%d ok=%v", seq, ok)
	}

	// Zero block = version 0.
	zero := make([]byte, n)
	if seq, ok := parseBlock(zero, scratch, 42, 3, 1); !ok || seq != 0 {
		t.Fatalf("zero block: seq=%d ok=%v", seq, ok)
	}

	// Single flipped byte in the filler: torn.
	buf[100] ^= 0xFF
	if _, ok := parseBlock(buf, scratch, 42, 3, 1); ok {
		t.Fatal("bit flip accepted")
	}
	buf[100] ^= 0xFF

	// Mixed versions: front half seq 8, back half seq 7 — torn.
	half := make([]byte, n)
	blockPayload(half, 42, 3, 1, 8)
	copy(buf[:n/2], half[:n/2])
	if _, ok := parseBlock(buf, scratch, 42, 3, 1); ok {
		t.Fatal("mixed-version (torn) block accepted")
	}

	// Wrong block coordinates: a stamp for another block must not parse.
	blockPayload(buf, 42, 3, 2, 7)
	if _, ok := parseBlock(buf, scratch, 42, 3, 1); ok {
		t.Fatal("foreign block accepted")
	}
}
