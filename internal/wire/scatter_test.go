package wire

import (
	"bytes"
	"testing"
)

// buildSegs turns a fuzz byte string into a sorted, non-overlapping
// scatter list: pairs of (gap, length) nibbles walk a cursor across the
// payload. Returns the segments and the composed flat payload.
func buildSegs(spec []byte) (segs []DataSeg, flat []byte) {
	pos := uint32(0)
	fill := byte(1)
	for i := 0; i+1 < len(spec) && len(segs) < 64; i += 2 {
		gap := uint32(spec[i] % 32)
		n := uint32(spec[i+1] % 64)
		pos += gap
		if n == 0 {
			continue
		}
		b := bytes.Repeat([]byte{fill}, int(n))
		fill++
		segs = append(segs, DataSeg{Off: pos, B: b})
		pos += n
	}
	total := pos
	if len(spec) > 0 {
		total += uint32(spec[len(spec)-1] % 16) // trailing zero run
	}
	flat = make([]byte, total)
	for _, s := range segs {
		copy(flat[s.Off:], s.B)
	}
	return segs, flat
}

// FuzzScatterReply checks the zero-copy reply invariant: encoding a Reply
// through the scatter path (DataSegs + zero-filled gaps) produces a frame
// byte-identical to the flat encoding of the composed payload, and the
// frame decodes back to that payload.
func FuzzScatterReply(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 8})
	f.Add([]byte{5, 0, 9})            // gap only, trailing zeros
	f.Add([]byte{0, 63, 31, 63, 15})  // big segments, big gap
	f.Add([]byte{1, 1, 1, 1, 1, 1})   // many tiny segments
	f.Fuzz(func(t *testing.T, spec []byte) {
		segs, flat := buildSegs(spec)
		if segs == nil {
			segs = []DataSeg{} // non-nil engages the scatter encoder
		}
		scatter := AppendFrame(nil, &Reply{
			ReqID: 42, Status: StatusOK, Version: 7,
			DataLen: uint32(len(flat)), DataSegs: segs,
		})
		plain := AppendFrame(nil, &Reply{
			ReqID: 42, Status: StatusOK, Version: 7, Data: flat,
		})
		if !bytes.Equal(scatter, plain) {
			t.Fatalf("scatter frame (%d bytes) differs from flat frame (%d bytes)", len(scatter), len(plain))
		}
		m, err := Unmarshal(scatter)
		if err != nil {
			t.Fatalf("decode scatter frame: %v", err)
		}
		rep, ok := m.(*Reply)
		if !ok {
			t.Fatalf("decoded %T, want *Reply", m)
		}
		if rep.ReqID != 42 || rep.Status != StatusOK || rep.Version != 7 {
			t.Fatalf("header fields corrupted: %+v", rep)
		}
		if !bytes.Equal(rep.Data, flat) {
			t.Fatalf("payload mismatch: got %d bytes, want %d", len(rep.Data), len(flat))
		}
		if rep.DataSegs != nil {
			t.Fatal("decode must always produce the flat form")
		}
	})
}

// TestScatterReplyEncodeZeroAlloc: encoding a pooled-frame reply from
// scatter segments must not allocate — the read fast path budget is 0
// allocs/op end to end.
func TestScatterReplyEncodeZeroAlloc(t *testing.T) {
	payload := bytes.Repeat([]byte{0xCD}, 4096)
	segs := []DataSeg{{Off: 0, B: payload}}
	rep := &Reply{ReqID: 1, Status: StatusOK, DataLen: 4096, DataSegs: segs}
	// Warm the frame pool at this size class.
	for i := 0; i < 8; i++ {
		f := GetFrame(4200)
		f.B = AppendFrame(f.B, rep)
		PutFrame(f)
	}
	allocs := testing.AllocsPerRun(200, func() {
		f := GetFrame(4200)
		f.B = AppendFrame(f.B, rep)
		PutFrame(f)
	})
	if allocs != 0 {
		t.Fatalf("scatter encode allocates %.1f objects/op, want 0", allocs)
	}
}
