// Package wire defines rebloc's binary wire protocol: the message types
// exchanged between clients, OSD daemons and the monitor, and a compact
// little-endian framing codec.
//
// Frame layout: [u32 payload length][u8 message type][payload bytes].
// Payloads are encoded field-by-field with Encoder/Decoder; all integers
// are fixed-width little-endian and byte strings are u32-length-prefixed.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShortBuffer is returned when a decode runs past the payload end.
var ErrShortBuffer = errors.New("wire: short buffer")

// Encoder appends fields to a byte slice.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder writing into buf (may be nil).
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf[:0]} }

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// U8 appends a byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a little-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Bytes32 appends a u32 length prefix followed by b.
func (e *Encoder) Bytes32(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Raw appends b with no length prefix. Scatter encoders (Reply.DataSegs)
// emit one U32 length up front and then splice raw segments and zero runs
// to form what a Bytes32 of the composed buffer would have produced.
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// zeroBlock feeds Zeros: appending from a static block avoids both a
// per-call allocation and a byte-at-a-time loop.
var zeroBlock [4096]byte

// Zeros appends n zero bytes.
func (e *Encoder) Zeros(n int) {
	for n > 0 {
		c := n
		if c > len(zeroBlock) {
			c = len(zeroBlock)
		}
		e.buf = append(e.buf, zeroBlock[:c]...)
		n -= c
	}
}

// String32 appends a u32 length prefix followed by s.
func (e *Encoder) String32(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder reads fields from a byte slice.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decoding error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining reports how many bytes are left.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.buf) {
		d.err = ErrShortBuffer
		return false
	}
	return true
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Bool reads one byte as a boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// Bytes32 reads a u32-length-prefixed byte string. The returned slice is a
// copy, safe to retain after the frame buffer is reused.
func (d *Decoder) Bytes32() []byte {
	n := int(d.U32())
	if d.err != nil || !d.need(n) {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:d.off+n])
	d.off += n
	return out
}

// Bytes32NoCopy reads a u32-length-prefixed byte string without copying.
// The slice aliases the frame buffer and must not outlive it.
func (d *Decoder) Bytes32NoCopy() []byte {
	n := int(d.U32())
	if d.err != nil || !d.need(n) {
		return nil
	}
	out := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return out
}

// String32 reads a u32-length-prefixed string.
func (d *Decoder) String32() string {
	n := int(d.U32())
	if d.err != nil || !d.need(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// Finish returns an error if decoding failed or bytes remain unread.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(d.buf)-d.off)
	}
	return nil
}
