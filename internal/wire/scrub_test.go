package wire

import (
	"reflect"
	"testing"
)

func TestRoundTripScrubPull(t *testing.T) {
	in := &ScrubPull{ReqID: 3, PG: 7, Cursor: "00000000000000a0", Max: 32, Deep: true}
	got, ok := roundTrip(t, in).(*ScrubPull)
	if !ok || !reflect.DeepEqual(in, got) {
		t.Fatalf("got %+v, want %+v", got, in)
	}
	// Exact-object fetch shape.
	in = &ScrubPull{ReqID: 4, PG: 1, OID: ObjectID{Pool: 2, Name: "img.3"}}
	got, ok = roundTrip(t, in).(*ScrubPull)
	if !ok || !reflect.DeepEqual(in, got) {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

func TestRoundTripScrubChunk(t *testing.T) {
	in := &ScrubChunk{
		ReqID: 9, PG: 5, Status: StatusOK, Clean: true,
		Objects: []ScrubObject{
			{OID: ObjectID{Pool: 1, Name: "a"}, Version: 3, Size: 8192, CRC: 0xDEADBEEF},
			{OID: ObjectID{Pool: 1, Name: "b"}, Version: 1, Size: 4096, Bad: true},
			{OID: ObjectID{Pool: 1, Name: "c"}, Version: 2, Size: 5, CRC: 7, Data: []byte("bytes")},
		},
		NextCursor: "0000000000000010",
		Done:       false,
	}
	got, ok := roundTrip(t, in).(*ScrubChunk)
	if !ok {
		t.Fatal("wrong message type")
	}
	// Normalise nil-vs-empty Data before the deep compare.
	for i := range got.Objects {
		if len(got.Objects[i].Data) == 0 {
			got.Objects[i].Data = nil
		}
		if len(in.Objects[i].Data) == 0 {
			in.Objects[i].Data = nil
		}
	}
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("got %+v, want %+v", got, in)
	}
	// Empty chunk (unclean refusal) survives too.
	in = &ScrubChunk{ReqID: 1, PG: 2, Status: StatusAgain, Done: true}
	got, ok = roundTrip(t, in).(*ScrubChunk)
	if !ok || !reflect.DeepEqual(in, got) {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}
