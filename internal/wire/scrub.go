package wire

// ScrubPull asks a replica for its view of a PG's objects so the primary
// can cross-check replicas during scrub. Two shapes share the message:
//
//   - Range walk (OID.Name == ""): return up to Max object summaries
//     starting at Cursor ("" to start). Deep scrub sets Deep, asking the
//     replica to read every object back and include a whole-object CRC
//     (and flag locally-detected checksum errors as Bad).
//   - Exact fetch (OID.Name != ""): return that single object including
//     its data — the read-repair path uses this to fetch a clean copy of
//     an object whose local blocks failed checksum verification.
type ScrubPull struct {
	ReqID  uint64
	PG     uint32
	Cursor string
	Max    uint32
	Deep   bool
	OID    ObjectID // Name != "": exact-object fetch with data
}

// Type implements Message.
func (*ScrubPull) Type() MsgType { return TScrubPull }

// Encode implements Message.
func (m *ScrubPull) Encode(e *Encoder) {
	e.U64(m.ReqID)
	e.U32(m.PG)
	e.String32(m.Cursor)
	e.U32(m.Max)
	e.Bool(m.Deep)
	m.OID.encode(e)
}

// Decode implements Message.
func (m *ScrubPull) Decode(d *Decoder) {
	m.ReqID = d.U64()
	m.PG = d.U32()
	m.Cursor = d.String32()
	m.Max = d.U32()
	m.Deep = d.Bool()
	m.OID = decodeObjectID(d)
}

// ScrubObject is one object summary inside a ScrubChunk. CRC is the
// whole-object Castagnoli CRC (deep scrubs and exact fetches only; 0
// otherwise). Bad marks an object the replica itself could not read back
// cleanly — its checksums failed locally — so the primary must treat the
// replica's copy as damaged rather than merely divergent. Data is filled
// only for exact fetches.
type ScrubObject struct {
	OID     ObjectID
	Version uint64
	Size    uint64
	CRC     uint32
	Bad     bool
	Data    []byte
}

// ScrubChunk answers a ScrubPull. Clean and the authority rules mirror
// OplogChunk: a primary must never repair from a replica that reports
// itself unclean (mid-backfill), because its objects may be stale.
type ScrubChunk struct {
	ReqID      uint64
	PG         uint32
	Status     Status
	Clean      bool
	Objects    []ScrubObject
	NextCursor string
	Done       bool
}

// Type implements Message.
func (*ScrubChunk) Type() MsgType { return TScrubChunk }

// Encode implements Message.
func (m *ScrubChunk) Encode(e *Encoder) {
	e.U64(m.ReqID)
	e.U32(m.PG)
	e.U8(uint8(m.Status))
	e.Bool(m.Clean)
	e.U32(uint32(len(m.Objects)))
	for i := range m.Objects {
		o := &m.Objects[i]
		o.OID.encode(e)
		e.U64(o.Version)
		e.U64(o.Size)
		e.U32(o.CRC)
		e.Bool(o.Bad)
		e.Bytes32(o.Data)
	}
	e.String32(m.NextCursor)
	e.Bool(m.Done)
}

// Decode implements Message.
func (m *ScrubChunk) Decode(d *Decoder) {
	m.ReqID = d.U64()
	m.PG = d.U32()
	m.Status = Status(d.U8())
	m.Clean = d.Bool()
	n := int(d.U32())
	if n != 0 {
		if n < 0 || n > 1<<20 || n > d.Remaining()/16 {
			d.err = ErrShortBuffer
			return
		}
		m.Objects = make([]ScrubObject, 0, n)
		for i := 0; i < n; i++ {
			m.Objects = append(m.Objects, ScrubObject{
				OID:     decodeObjectID(d),
				Version: d.U64(),
				Size:    d.U64(),
				CRC:     d.U32(),
				Bad:     d.Bool(),
				Data:    d.Bytes32(),
			})
		}
	}
	m.NextCursor = d.String32()
	m.Done = d.Bool()
}
