package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrame bounds a single frame payload (64 MiB): larger than any block op
// plus headroom for backfill chunks, small enough to reject garbage.
const MaxFrame = 64 << 20

// Marshal encodes m into a framed byte slice ready for the wire.
func Marshal(m Message) []byte {
	return AppendFrame(make([]byte, 0, 64), m)
}

// AppendFrame encodes m into dst (reusing its capacity) and returns the
// framed bytes. Callers on hot paths use this to avoid per-message allocs;
// the Encoder itself is pooled because passing it through the Message
// interface would otherwise heap-allocate one per call.
func AppendFrame(dst []byte, m Message) []byte {
	e := encoderPool.Get().(*Encoder)
	e.buf = dst[:0]
	e.U32(0)
	e.U8(uint8(m.Type()))
	m.Encode(e)
	buf := e.buf
	e.buf = nil
	encoderPool.Put(e)
	binary.LittleEndian.PutUint32(buf, uint32(len(buf)-5))
	return buf
}

// WriteMessage frames and writes m to w.
func WriteMessage(w io.Writer, m Message) error {
	buf := Marshal(m)
	_, err := w.Write(buf)
	return err
}

// ReadMessage reads one framed message from r. The scratch slice, if large
// enough, is reused for the payload; pass nil for a fresh buffer each time.
func ReadMessage(r io.Reader, scratch []byte) (Message, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, scratch, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return nil, scratch, fmt.Errorf("wire: frame of %d bytes exceeds max %d", n, MaxFrame)
	}
	t := MsgType(hdr[4])
	if cap(scratch) < int(n) {
		scratch = make([]byte, n)
	}
	payload := scratch[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, scratch, fmt.Errorf("wire: read %s payload: %w", t, err)
	}
	m := New(t)
	if m == nil {
		return nil, scratch, fmt.Errorf("wire: unknown message type %d", uint8(t))
	}
	d := NewDecoder(payload)
	m.Decode(d)
	if err := d.Err(); err != nil {
		return nil, scratch, fmt.Errorf("wire: decode %s: %w", t, err)
	}
	return m, scratch, nil
}

// Unmarshal decodes a single framed message from buf.
func Unmarshal(buf []byte) (Message, error) {
	if len(buf) < 5 {
		return nil, ErrShortBuffer
	}
	n := binary.LittleEndian.Uint32(buf[:4])
	if int(n) != len(buf)-5 {
		return nil, fmt.Errorf("wire: frame length %d does not match buffer %d", n, len(buf)-5)
	}
	t := MsgType(buf[4])
	m := New(t)
	if m == nil {
		return nil, fmt.Errorf("wire: unknown message type %d", uint8(t))
	}
	d := NewDecoder(buf[5:])
	m.Decode(d)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("wire: decode %s: %w", t, err)
	}
	return m, nil
}
