package wire

import "testing"

func TestFramePoolRoundTrip(t *testing.T) {
	f := GetFrame(600)
	if cap(f.B) < 600 {
		t.Fatalf("cap %d < requested 600", cap(f.B))
	}
	if len(f.B) != 0 {
		t.Fatalf("fresh frame has len %d", len(f.B))
	}
	f.B = append(f.B, make([]byte, 600)...)
	PutFrame(f)
	g := GetFrame(600)
	if len(g.B) != 0 {
		t.Fatal("recycled frame must come back empty")
	}
	PutFrame(g)
}

func TestFramePoolJumboNeverRetained(t *testing.T) {
	before := FramePoolStats()
	f := GetFrame(MaxPooledFrame + 1)
	if cap(f.B) < MaxPooledFrame+1 {
		t.Fatal("jumbo frame too small")
	}
	PutFrame(f)
	after := FramePoolStats()
	if after.Jumbos != before.Jumbos+1 {
		t.Fatalf("jumbo get not counted: %+v -> %+v", before, after)
	}
	if after.Drops != before.Drops+1 {
		t.Fatal("jumbo put must be dropped, not pooled")
	}
}

func TestFramePoolClassBounds(t *testing.T) {
	for _, tc := range []struct{ n, class int }{
		{0, minFrameClass},
		{1, minFrameClass},
		{512, minFrameClass},
		{513, 10},
		{1 << 12, 12},
		{(1 << 12) + 1, 13},
		{MaxPooledFrame, maxFrameClass},
	} {
		if got := frameClass(tc.n); got != tc.class {
			t.Errorf("frameClass(%d) = %d, want %d", tc.n, got, tc.class)
		}
	}
}

func TestPoolStatsHitRate(t *testing.T) {
	s := PoolStats{Gets: 0}
	if s.HitRate() != 0 {
		t.Fatal("zero gets must report 0 hit rate")
	}
	s = PoolStats{Gets: 10, Hits: 9}
	if s.HitRate() != 0.9 {
		t.Fatalf("hit rate %f, want 0.9", s.HitRate())
	}
}

// BenchmarkAppendFramePooled is the allocation floor of the send path:
// frame buffer and encoder both come from pools, so steady state should
// report ~0 allocs/op.
func BenchmarkAppendFramePooled(b *testing.B) {
	msg := &ClientWrite{ReqID: 1, OID: ObjectID{Pool: 1, Name: "bench-object"}, Offset: 4096, Data: make([]byte, 4096)}
	// Warm the pool's per-P caches.
	for i := 0; i < 64; i++ {
		f := GetFrame(4 << 10)
		f.B = AppendFrame(f.B, msg)
		PutFrame(f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := GetFrame(8 << 10)
		f.B = AppendFrame(f.B, msg)
		PutFrame(f)
	}
}
