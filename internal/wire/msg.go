package wire

import (
	"fmt"
	"hash/fnv"
)

// MsgType identifies a wire message.
type MsgType uint8

// Wire message types.
const (
	TClientWrite MsgType = iota + 1
	TClientRead
	TClientDelete
	TReply
	TRepl
	TReplAck
	TMonBoot
	TGetMap
	TMonMap
	TPing
	TPong
	TFlush
	TOplogPull
	TOplogChunk
	TBackfillPull
	TBackfillChunk
	TReplBatch
	TScrubPull
	TScrubChunk
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case TClientWrite:
		return "ClientWrite"
	case TClientRead:
		return "ClientRead"
	case TClientDelete:
		return "ClientDelete"
	case TReply:
		return "Reply"
	case TRepl:
		return "Repl"
	case TReplAck:
		return "ReplAck"
	case TMonBoot:
		return "MonBoot"
	case TGetMap:
		return "GetMap"
	case TMonMap:
		return "MonMap"
	case TPing:
		return "Ping"
	case TPong:
		return "Pong"
	case TFlush:
		return "Flush"
	case TOplogPull:
		return "OplogPull"
	case TOplogChunk:
		return "OplogChunk"
	case TBackfillPull:
		return "BackfillPull"
	case TBackfillChunk:
		return "BackfillChunk"
	case TReplBatch:
		return "ReplBatch"
	case TScrubPull:
		return "ScrubPull"
	case TScrubChunk:
		return "ScrubChunk"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Status is the result code carried in replies.
type Status uint8

// Reply status codes. StatusOK is the zero value on purpose: a
// zero-initialised reply means success.
const (
	StatusOK Status = iota
	StatusNotFound
	StatusIOError
	StatusStaleEpoch
	StatusNotPrimary
	StatusAgain
	StatusInvalid
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NotFound"
	case StatusIOError:
		return "IOError"
	case StatusStaleEpoch:
		return "StaleEpoch"
	case StatusNotPrimary:
		return "NotPrimary"
	case StatusAgain:
		return "Again"
	case StatusInvalid:
		return "Invalid"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// ObjectID names an object within a pool. The block layer stripes images
// over objects named "<image>.<index>".
type ObjectID struct {
	Pool uint32
	Name string
}

// Hash returns a stable 64-bit hash of the object id, used for PG mapping
// and as the object key inside the object stores.
func (o ObjectID) Hash() uint64 {
	h := fnv.New64a()
	var pool [4]byte
	pool[0] = byte(o.Pool)
	pool[1] = byte(o.Pool >> 8)
	pool[2] = byte(o.Pool >> 16)
	pool[3] = byte(o.Pool >> 24)
	_, _ = h.Write(pool[:])
	_, _ = h.Write([]byte(o.Name))
	return h.Sum64()
}

// String renders "pool/name".
func (o ObjectID) String() string { return fmt.Sprintf("%d/%s", o.Pool, o.Name) }

func (o ObjectID) encode(e *Encoder) {
	e.U32(o.Pool)
	e.String32(o.Name)
}

func decodeObjectID(d *Decoder) ObjectID {
	return ObjectID{Pool: d.U32(), Name: d.String32()}
}

// OpKind identifies a mutation kind inside replication and operation logs.
type OpKind uint8

// Operation kinds.
const (
	OpWrite OpKind = iota + 1
	OpDelete
	OpRead // reads are appended to the operation log when they must be
	// serviced by a non-priority thread (paper Fig 6, R2/R3)
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpDelete:
		return "delete"
	case OpRead:
		return "read"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one logged/replicated mutation: the unit stored in the NVM
// operation log and shipped to replicas.
type Op struct {
	Kind    OpKind
	OID     ObjectID
	Offset  uint64
	Length  uint32 // for reads/deletes; len(Data) for writes
	Version uint64 // per-object version assigned by the primary
	Seq     uint64 // per-PG sequence number
	Data    []byte
}

func (op *Op) encode(e *Encoder) {
	e.U8(uint8(op.Kind))
	op.OID.encode(e)
	e.U64(op.Offset)
	e.U32(op.Length)
	e.U64(op.Version)
	e.U64(op.Seq)
	e.Bytes32(op.Data)
}

func decodeOp(d *Decoder) Op {
	return Op{
		Kind:    OpKind(d.U8()),
		OID:     decodeObjectID(d),
		Offset:  d.U64(),
		Length:  d.U32(),
		Version: d.U64(),
		Seq:     d.U64(),
		Data:    d.Bytes32(),
	}
}

// Message is any frame payload.
type Message interface {
	// Type returns the frame type byte.
	Type() MsgType
	// Encode appends the payload to e.
	Encode(e *Encoder)
	// Decode parses the payload from d.
	Decode(d *Decoder)
}

// ClientWrite asks the primary OSD for oid's PG to apply a write.
type ClientWrite struct {
	ReqID  uint64
	Epoch  uint32
	OID    ObjectID
	Offset uint64
	Data   []byte
}

// Type implements Message.
func (*ClientWrite) Type() MsgType { return TClientWrite }

// Encode implements Message.
func (m *ClientWrite) Encode(e *Encoder) {
	e.U64(m.ReqID)
	e.U32(m.Epoch)
	m.OID.encode(e)
	e.U64(m.Offset)
	e.Bytes32(m.Data)
}

// Decode implements Message.
func (m *ClientWrite) Decode(d *Decoder) {
	m.ReqID = d.U64()
	m.Epoch = d.U32()
	m.OID = decodeObjectID(d)
	m.Offset = d.U64()
	m.Data = d.Bytes32()
}

// ClientRead asks the primary OSD to read length bytes at offset.
type ClientRead struct {
	ReqID  uint64
	Epoch  uint32
	OID    ObjectID
	Offset uint64
	Length uint32
}

// Type implements Message.
func (*ClientRead) Type() MsgType { return TClientRead }

// Encode implements Message.
func (m *ClientRead) Encode(e *Encoder) {
	e.U64(m.ReqID)
	e.U32(m.Epoch)
	m.OID.encode(e)
	e.U64(m.Offset)
	e.U32(m.Length)
}

// Decode implements Message.
func (m *ClientRead) Decode(d *Decoder) {
	m.ReqID = d.U64()
	m.Epoch = d.U32()
	m.OID = decodeObjectID(d)
	m.Offset = d.U64()
	m.Length = d.U32()
}

// ClientDelete asks the primary OSD to delete an object.
type ClientDelete struct {
	ReqID uint64
	Epoch uint32
	OID   ObjectID
}

// Type implements Message.
func (*ClientDelete) Type() MsgType { return TClientDelete }

// Encode implements Message.
func (m *ClientDelete) Encode(e *Encoder) {
	e.U64(m.ReqID)
	e.U32(m.Epoch)
	m.OID.encode(e)
}

// Decode implements Message.
func (m *ClientDelete) Decode(d *Decoder) {
	m.ReqID = d.U64()
	m.Epoch = d.U32()
	m.OID = decodeObjectID(d)
}

// DataSeg is one scatter segment of a zero-copy reply payload: B covers
// [Off, Off+len(B)) of the payload; bytes between segments read as zero.
// Segments must be sorted by Off and non-overlapping.
type DataSeg struct {
	Off uint32
	B   []byte
}

// Reply answers a client request or an admin command.
//
// The payload has two in-memory representations with one wire format:
// the flat Data slice, or — when DataSegs is non-nil — a scatter list
// over a payload of DataLen bytes, encoded segment by segment straight
// into the frame (gaps zero-filled). The zero-copy read path uses the
// scatter form so extent-index hits serve staged bytes to the frame
// encoder without an intermediate compose copy. Decode always produces
// the flat form; receivers never see DataSegs.
type Reply struct {
	ReqID   uint64
	Status  Status
	Version uint64
	Data    []byte

	DataLen  uint32    // scatter payload length; used only when DataSegs != nil
	DataSegs []DataSeg // scatter segments; nil means use Data
}

// Type implements Message.
func (*Reply) Type() MsgType { return TReply }

// Encode implements Message.
func (m *Reply) Encode(e *Encoder) {
	e.U64(m.ReqID)
	e.U8(uint8(m.Status))
	e.U64(m.Version)
	if m.DataSegs == nil {
		e.Bytes32(m.Data)
		return
	}
	// Scatter form: byte-identical to Bytes32 of the composed payload.
	e.U32(m.DataLen)
	pos := uint32(0)
	for _, s := range m.DataSegs {
		if s.Off > pos {
			e.Zeros(int(s.Off - pos))
		}
		e.Raw(s.B)
		pos = s.Off + uint32(len(s.B))
	}
	if pos < m.DataLen {
		e.Zeros(int(m.DataLen - pos))
	}
}

// Decode implements Message.
func (m *Reply) Decode(d *Decoder) {
	m.ReqID = d.U64()
	m.Status = Status(d.U8())
	m.Version = d.U64()
	m.Data = d.Bytes32()
}

// Repl carries one mutation from the primary to a replica.
type Repl struct {
	ReqID uint64 // primary-local tag echoed in the ack
	PG    uint32
	Epoch uint32
	Op    Op
}

// Type implements Message.
func (*Repl) Type() MsgType { return TRepl }

// Encode implements Message.
func (m *Repl) Encode(e *Encoder) {
	e.U64(m.ReqID)
	e.U32(m.PG)
	e.U32(m.Epoch)
	m.Op.encode(e)
}

// Decode implements Message.
func (m *Repl) Decode(d *Decoder) {
	m.ReqID = d.U64()
	m.PG = d.U32()
	m.Epoch = d.U32()
	m.Op = decodeOp(d)
}

// ReplBatch carries several mutations from the primary to one replica in
// a single frame. The primary coalesces ops queued for the same peer
// (replication fan-out batching); the replica processes the items in
// order and acknowledges each with its own ReplAck, so the ack path and
// the pending-op bookkeeping are identical to unbatched Repl.
type ReplBatch struct {
	Items []Repl
}

// Type implements Message.
func (*ReplBatch) Type() MsgType { return TReplBatch }

// Encode implements Message.
func (m *ReplBatch) Encode(e *Encoder) {
	e.U32(uint32(len(m.Items)))
	for i := range m.Items {
		it := &m.Items[i]
		e.U64(it.ReqID)
		e.U32(it.PG)
		e.U32(it.Epoch)
		it.Op.encode(e)
	}
}

// Decode implements Message.
func (m *ReplBatch) Decode(d *Decoder) {
	n := int(d.U32())
	if n == 0 {
		return
	}
	// Every item occupies at least 16 bytes on the wire, so a count the
	// payload cannot hold is garbage: fail instead of over-allocating.
	if n < 0 || n > 1<<20 || n > d.Remaining()/16 {
		d.err = ErrShortBuffer
		return
	}
	m.Items = make([]Repl, 0, n)
	for i := 0; i < n; i++ {
		m.Items = append(m.Items, Repl{
			ReqID: d.U64(),
			PG:    d.U32(),
			Epoch: d.U32(),
			Op:    decodeOp(d),
		})
	}
}

// ReplAck acknowledges a replicated mutation. From names the acking OSD
// so the primary can count each secondary at most once even if the
// network duplicates or replays the ack frame.
type ReplAck struct {
	ReqID  uint64
	PG     uint32
	Seq    uint64
	From   uint32
	Status Status
}

// Type implements Message.
func (*ReplAck) Type() MsgType { return TReplAck }

// Encode implements Message.
func (m *ReplAck) Encode(e *Encoder) {
	e.U64(m.ReqID)
	e.U32(m.PG)
	e.U64(m.Seq)
	e.U32(m.From)
	e.U8(uint8(m.Status))
}

// Decode implements Message.
func (m *ReplAck) Decode(d *Decoder) {
	m.ReqID = d.U64()
	m.PG = d.U32()
	m.Seq = d.U64()
	m.From = d.U32()
	m.Status = Status(d.U8())
}

// MonBoot announces an OSD to the monitor.
type MonBoot struct {
	OSDID uint32
	Addr  string
}

// Type implements Message.
func (*MonBoot) Type() MsgType { return TMonBoot }

// Encode implements Message.
func (m *MonBoot) Encode(e *Encoder) {
	e.U32(m.OSDID)
	e.String32(m.Addr)
}

// Decode implements Message.
func (m *MonBoot) Decode(d *Decoder) {
	m.OSDID = d.U32()
	m.Addr = d.String32()
}

// GetMap requests the current cluster map from the monitor.
type GetMap struct {
	ReqID uint64
}

// Type implements Message.
func (*GetMap) Type() MsgType { return TGetMap }

// Encode implements Message.
func (m *GetMap) Encode(e *Encoder) { e.U64(m.ReqID) }

// Decode implements Message.
func (m *GetMap) Decode(d *Decoder) { m.ReqID = d.U64() }

// MonMap distributes an encoded cluster map (see internal/crush).
type MonMap struct {
	ReqID    uint64
	MapBytes []byte
}

// Type implements Message.
func (*MonMap) Type() MsgType { return TMonMap }

// Encode implements Message.
func (m *MonMap) Encode(e *Encoder) {
	e.U64(m.ReqID)
	e.Bytes32(m.MapBytes)
}

// Decode implements Message.
func (m *MonMap) Decode(d *Decoder) {
	m.ReqID = d.U64()
	m.MapBytes = d.Bytes32()
}

// Ping is an OSD heartbeat to the monitor.
type Ping struct {
	OSDID uint32
	Epoch uint32
}

// Type implements Message.
func (*Ping) Type() MsgType { return TPing }

// Encode implements Message.
func (m *Ping) Encode(e *Encoder) {
	e.U32(m.OSDID)
	e.U32(m.Epoch)
}

// Decode implements Message.
func (m *Ping) Decode(d *Decoder) {
	m.OSDID = d.U32()
	m.Epoch = d.U32()
}

// Pong answers a Ping, carrying the monitor's current epoch.
type Pong struct {
	Epoch uint32
}

// Type implements Message.
func (*Pong) Type() MsgType { return TPong }

// Encode implements Message.
func (m *Pong) Encode(e *Encoder) { e.U32(m.Epoch) }

// Decode implements Message.
func (m *Pong) Decode(d *Decoder) { m.Epoch = d.U32() }

// Flush asks an OSD to synchronously flush all staged operations (admin
// and recovery use).
type Flush struct {
	ReqID  uint64
	Retain bool // keep op-log entries after flushing (pre-recovery flush)
}

// Type implements Message.
func (*Flush) Type() MsgType { return TFlush }

// Encode implements Message.
func (m *Flush) Encode(e *Encoder) {
	e.U64(m.ReqID)
	e.Bool(m.Retain)
}

// Decode implements Message.
func (m *Flush) Decode(d *Decoder) {
	m.ReqID = d.U64()
	m.Retain = d.Bool()
}

// OplogPull requests the operation-log suffix for a PG starting at FromSeq
// (recovery step ⑤ in the paper).
type OplogPull struct {
	ReqID   uint64
	PG      uint32
	FromSeq uint64
}

// Type implements Message.
func (*OplogPull) Type() MsgType { return TOplogPull }

// Encode implements Message.
func (m *OplogPull) Encode(e *Encoder) {
	e.U64(m.ReqID)
	e.U32(m.PG)
	e.U64(m.FromSeq)
}

// Decode implements Message.
func (m *OplogPull) Decode(d *Decoder) {
	m.ReqID = d.U64()
	m.PG = d.U32()
	m.FromSeq = d.U64()
}

// OplogChunk returns operation-log entries for a PG. It doubles as the
// authority probe of the recovery protocol: Clean and Epoch describe the
// source's standing for this PG, and a puller must not copy data from a
// source that reports itself unclean.
type OplogChunk struct {
	ReqID  uint64
	PG     uint32
	Status Status
	// Clean reports whether the source currently serves this PG (it is
	// not itself mid-backfill).
	Clean bool
	// Epoch is the map epoch of the latest interval the source served
	// this PG clean — its authority rank when no clean source exists.
	Epoch uint32
	Ops   []Op
}

// Type implements Message.
func (*OplogChunk) Type() MsgType { return TOplogChunk }

// Encode implements Message.
func (m *OplogChunk) Encode(e *Encoder) {
	e.U64(m.ReqID)
	e.U32(m.PG)
	e.U8(uint8(m.Status))
	e.Bool(m.Clean)
	e.U32(m.Epoch)
	e.U32(uint32(len(m.Ops)))
	for i := range m.Ops {
		m.Ops[i].encode(e)
	}
}

// Decode implements Message.
func (m *OplogChunk) Decode(d *Decoder) {
	m.ReqID = d.U64()
	m.PG = d.U32()
	m.Status = Status(d.U8())
	m.Clean = d.Bool()
	m.Epoch = d.U32()
	n := int(d.U32())
	if n == 0 {
		return
	}
	if n < 0 || n > 1<<20 || n > d.Remaining()/16 {
		d.err = ErrShortBuffer
		return
	}
	m.Ops = make([]Op, 0, n)
	for i := 0; i < n; i++ {
		m.Ops = append(m.Ops, decodeOp(d))
	}
}

// BackfillPull requests a batch of whole objects for a PG, resuming at
// Cursor ("" to start). Used to resynchronise a replacement OSD.
type BackfillPull struct {
	ReqID  uint64
	PG     uint32
	Cursor string
	Max    uint32
}

// Type implements Message.
func (*BackfillPull) Type() MsgType { return TBackfillPull }

// Encode implements Message.
func (m *BackfillPull) Encode(e *Encoder) {
	e.U64(m.ReqID)
	e.U32(m.PG)
	e.String32(m.Cursor)
	e.U32(m.Max)
}

// Decode implements Message.
func (m *BackfillPull) Decode(d *Decoder) {
	m.ReqID = d.U64()
	m.PG = d.U32()
	m.Cursor = d.String32()
	m.Max = d.U32()
}

// BackfillObject is one object snapshot inside a BackfillChunk.
type BackfillObject struct {
	OID     ObjectID
	Version uint64
	Data    []byte
}

// BackfillChunk returns a batch of objects; Done marks the end of the PG.
type BackfillChunk struct {
	ReqID      uint64
	PG         uint32
	Status     Status
	Objects    []BackfillObject
	NextCursor string
	Done       bool
}

// Type implements Message.
func (*BackfillChunk) Type() MsgType { return TBackfillChunk }

// Encode implements Message.
func (m *BackfillChunk) Encode(e *Encoder) {
	e.U64(m.ReqID)
	e.U32(m.PG)
	e.U8(uint8(m.Status))
	e.U32(uint32(len(m.Objects)))
	for i := range m.Objects {
		m.Objects[i].OID.encode(e)
		e.U64(m.Objects[i].Version)
		e.Bytes32(m.Objects[i].Data)
	}
	e.String32(m.NextCursor)
	e.Bool(m.Done)
}

// Decode implements Message.
func (m *BackfillChunk) Decode(d *Decoder) {
	m.ReqID = d.U64()
	m.PG = d.U32()
	m.Status = Status(d.U8())
	n := int(d.U32())
	if n != 0 {
		if n < 0 || n > 1<<20 || n > d.Remaining()/16 {
			d.err = ErrShortBuffer
			return
		}
		m.Objects = make([]BackfillObject, 0, n)
		for i := 0; i < n; i++ {
			m.Objects = append(m.Objects, BackfillObject{
				OID:     decodeObjectID(d),
				Version: d.U64(),
				Data:    d.Bytes32(),
			})
		}
	}
	m.NextCursor = d.String32()
	m.Done = d.Bool()
}

// New returns a zero message of the given type, or nil if unknown.
func New(t MsgType) Message {
	switch t {
	case TClientWrite:
		return &ClientWrite{}
	case TClientRead:
		return &ClientRead{}
	case TClientDelete:
		return &ClientDelete{}
	case TReply:
		return &Reply{}
	case TRepl:
		return &Repl{}
	case TReplAck:
		return &ReplAck{}
	case TMonBoot:
		return &MonBoot{}
	case TGetMap:
		return &GetMap{}
	case TMonMap:
		return &MonMap{}
	case TPing:
		return &Ping{}
	case TPong:
		return &Pong{}
	case TFlush:
		return &Flush{}
	case TOplogPull:
		return &OplogPull{}
	case TOplogChunk:
		return &OplogChunk{}
	case TBackfillPull:
		return &BackfillPull{}
	case TBackfillChunk:
		return &BackfillChunk{}
	case TReplBatch:
		return &ReplBatch{}
	case TScrubPull:
		return &ScrubPull{}
	case TScrubChunk:
		return &ScrubChunk{}
	default:
		return nil
	}
}
