package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	buf := Marshal(m)
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal(%s): %v", m.Type(), err)
	}
	return got
}

func TestRoundTripClientWrite(t *testing.T) {
	in := &ClientWrite{ReqID: 7, Epoch: 3, OID: ObjectID{Pool: 1, Name: "img.0"}, Offset: 4096, Data: []byte("hello")}
	got, ok := roundTrip(t, in).(*ClientWrite)
	if !ok || !reflect.DeepEqual(in, got) {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

func TestRoundTripClientRead(t *testing.T) {
	in := &ClientRead{ReqID: 9, Epoch: 1, OID: ObjectID{Pool: 2, Name: "x"}, Offset: 8192, Length: 4096}
	got, ok := roundTrip(t, in).(*ClientRead)
	if !ok || !reflect.DeepEqual(in, got) {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

func TestRoundTripClientDelete(t *testing.T) {
	in := &ClientDelete{ReqID: 2, Epoch: 5, OID: ObjectID{Pool: 9, Name: "gone"}}
	got, ok := roundTrip(t, in).(*ClientDelete)
	if !ok || !reflect.DeepEqual(in, got) {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

func TestRoundTripReply(t *testing.T) {
	in := &Reply{ReqID: 11, Status: StatusNotFound, Version: 42, Data: []byte{1, 2, 3}}
	got, ok := roundTrip(t, in).(*Reply)
	if !ok || !reflect.DeepEqual(in, got) {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

func TestRoundTripRepl(t *testing.T) {
	in := &Repl{
		ReqID: 5, PG: 12, Epoch: 2,
		Op: Op{Kind: OpWrite, OID: ObjectID{Pool: 1, Name: "o"}, Offset: 512, Length: 5, Version: 3, Seq: 77, Data: []byte("abcde")},
	}
	got, ok := roundTrip(t, in).(*Repl)
	if !ok || !reflect.DeepEqual(in, got) {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

func TestRoundTripReplAck(t *testing.T) {
	in := &ReplAck{ReqID: 1, PG: 2, Seq: 3, Status: StatusOK}
	got, ok := roundTrip(t, in).(*ReplAck)
	if !ok || !reflect.DeepEqual(in, got) {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

func TestRoundTripMonMessages(t *testing.T) {
	msgs := []Message{
		&MonBoot{OSDID: 3, Addr: "127.0.0.1:7000"},
		&GetMap{ReqID: 8},
		&MonMap{ReqID: 8, MapBytes: []byte{9, 9, 9}},
		&Ping{OSDID: 2, Epoch: 4},
		&Pong{Epoch: 5},
		&Flush{ReqID: 6, Retain: true},
	}
	for _, in := range msgs {
		got := roundTrip(t, in)
		if !reflect.DeepEqual(in, got) {
			t.Fatalf("%s: got %+v, want %+v", in.Type(), got, in)
		}
	}
}

func TestRoundTripRecoveryMessages(t *testing.T) {
	pull := &OplogPull{ReqID: 1, PG: 2, FromSeq: 10}
	if got := roundTrip(t, pull); !reflect.DeepEqual(pull, got) {
		t.Fatalf("got %+v", got)
	}
	chunk := &OplogChunk{
		ReqID: 1, PG: 2, Status: StatusOK,
		Ops: []Op{
			{Kind: OpWrite, OID: ObjectID{Pool: 1, Name: "a"}, Seq: 1, Data: []byte("x")},
			{Kind: OpDelete, OID: ObjectID{Pool: 1, Name: "b"}, Seq: 2, Data: []byte{}},
		},
	}
	got, ok := roundTrip(t, chunk).(*OplogChunk)
	if !ok || len(got.Ops) != 2 || got.Ops[1].Kind != OpDelete {
		t.Fatalf("got %+v", got)
	}
	bp := &BackfillPull{ReqID: 3, PG: 4, Cursor: "abc", Max: 128}
	if got := roundTrip(t, bp); !reflect.DeepEqual(bp, got) {
		t.Fatalf("got %+v", got)
	}
	bc := &BackfillChunk{
		ReqID: 3, PG: 4, Status: StatusOK,
		Objects:    []BackfillObject{{OID: ObjectID{Pool: 1, Name: "o1"}, Version: 9, Data: []byte("data")}},
		NextCursor: "o1", Done: true,
	}
	gotBC, ok := roundTrip(t, bc).(*BackfillChunk)
	if !ok || !gotBC.Done || len(gotBC.Objects) != 1 || gotBC.Objects[0].Version != 9 {
		t.Fatalf("got %+v", gotBC)
	}
}

func TestReadWriteMessageStream(t *testing.T) {
	var buf bytes.Buffer
	in1 := &ClientWrite{ReqID: 1, OID: ObjectID{Name: "a"}, Data: []byte("one")}
	in2 := &Reply{ReqID: 1, Status: StatusOK}
	if err := WriteMessage(&buf, in1); err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(&buf, in2); err != nil {
		t.Fatal(err)
	}
	m1, scratch, err := ReadMessage(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := m1.(*ClientWrite); !ok || string(w.Data) != "one" {
		t.Fatalf("got %+v", m1)
	}
	m2, _, err := ReadMessage(&buf, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := m2.(*Reply); !ok || r.ReqID != 1 {
		t.Fatalf("got %+v", m2)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("want error on empty buffer")
	}
	if _, err := Unmarshal([]byte{0, 0, 0, 0, 255}); err == nil {
		t.Fatal("want error on unknown type")
	}
	// Length mismatch.
	buf := Marshal(&Pong{Epoch: 1})
	if _, err := Unmarshal(buf[:len(buf)-1]); err == nil {
		t.Fatal("want error on truncated frame")
	}
}

func TestReadMessageRejectsHugeFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, byte(TPing)})
	if _, _, err := ReadMessage(&buf, nil); err == nil {
		t.Fatal("want error on oversized frame")
	}
}

func TestDecoderShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U64()
	if d.Err() == nil {
		t.Fatal("want short-buffer error")
	}
}

func TestDecoderFinishTrailing(t *testing.T) {
	d := NewDecoder([]byte{1, 2, 3})
	_ = d.U8()
	if err := d.Finish(); err == nil {
		t.Fatal("want trailing-bytes error")
	}
}

func TestObjectIDHashStable(t *testing.T) {
	a := ObjectID{Pool: 1, Name: "img.7"}
	b := ObjectID{Pool: 1, Name: "img.7"}
	if a.Hash() != b.Hash() {
		t.Fatal("hash not deterministic")
	}
	c := ObjectID{Pool: 2, Name: "img.7"}
	if a.Hash() == c.Hash() {
		t.Fatal("pool must affect hash")
	}
}

func TestEncoderDecoderPrimitives(t *testing.T) {
	e := NewEncoder(nil)
	e.U8(1)
	e.U16(2)
	e.U32(3)
	e.U64(4)
	e.I64(-5)
	e.Bool(true)
	e.Bytes32([]byte("abc"))
	e.String32("def")
	d := NewDecoder(e.Bytes())
	if d.U8() != 1 || d.U16() != 2 || d.U32() != 3 || d.U64() != 4 || d.I64() != -5 || !d.Bool() {
		t.Fatal("primitive mismatch")
	}
	if string(d.Bytes32()) != "abc" || d.String32() != "def" {
		t.Fatal("bytes/string mismatch")
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestBytes32NoCopyAliases(t *testing.T) {
	e := NewEncoder(nil)
	e.Bytes32([]byte{7, 7})
	buf := e.Bytes()
	d := NewDecoder(buf)
	b := d.Bytes32NoCopy()
	buf[4] = 9
	if b[0] != 9 {
		t.Fatal("NoCopy must alias frame buffer")
	}
}

// Property: ClientWrite round-trips for arbitrary field values.
func TestQuickRoundTripClientWrite(t *testing.T) {
	f := func(req uint64, epoch uint32, pool uint32, name string, off uint64, data []byte) bool {
		in := &ClientWrite{ReqID: req, Epoch: epoch, OID: ObjectID{Pool: pool, Name: name}, Offset: off, Data: data}
		got, err := Unmarshal(Marshal(in))
		if err != nil {
			return false
		}
		g, ok := got.(*ClientWrite)
		if !ok {
			return false
		}
		if g.Data == nil {
			g.Data = []byte{}
		}
		if in.Data == nil {
			in.Data = []byte{}
		}
		return g.ReqID == in.ReqID && g.Epoch == in.Epoch && g.OID == in.OID &&
			g.Offset == in.Offset && bytes.Equal(g.Data, in.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Op round-trips inside a Repl for arbitrary values.
func TestQuickRoundTripOp(t *testing.T) {
	f := func(kind uint8, name string, off uint64, ln uint32, ver, seq uint64, data []byte) bool {
		in := &Repl{
			ReqID: 1, PG: 2, Epoch: 3,
			Op: Op{Kind: OpKind(kind%3 + 1), OID: ObjectID{Name: name}, Offset: off, Length: ln, Version: ver, Seq: seq, Data: data},
		}
		got, err := Unmarshal(Marshal(in))
		if err != nil {
			return false
		}
		g, ok := got.(*Repl)
		if !ok {
			return false
		}
		if g.Op.Data == nil {
			g.Op.Data = []byte{}
		}
		if in.Op.Data == nil {
			in.Op.Data = []byte{}
		}
		return g.Op.Kind == in.Op.Kind && g.Op.OID == in.Op.OID && g.Op.Offset == in.Op.Offset &&
			g.Op.Length == in.Op.Length && g.Op.Version == in.Op.Version && g.Op.Seq == in.Op.Seq &&
			bytes.Equal(g.Op.Data, in.Op.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNewCoversAllTypes(t *testing.T) {
	for tt := TClientWrite; tt <= TBackfillChunk; tt++ {
		m := New(tt)
		if m == nil {
			t.Fatalf("New(%s) = nil", tt)
		}
		if m.Type() != tt {
			t.Fatalf("New(%s).Type() = %s", tt, m.Type())
		}
	}
	if New(MsgType(200)) != nil {
		t.Fatal("New(unknown) should be nil")
	}
}

func TestMsgTypeAndStatusStrings(t *testing.T) {
	if TClientWrite.String() != "ClientWrite" || MsgType(200).String() == "" {
		t.Fatal("MsgType.String broken")
	}
	if StatusOK.String() != "OK" || Status(200).String() == "" {
		t.Fatal("Status.String broken")
	}
	if OpWrite.String() != "write" || OpKind(200).String() == "" {
		t.Fatal("OpKind.String broken")
	}
}

func BenchmarkMarshalClientWrite4K(b *testing.B) {
	data := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(data)
	m := &ClientWrite{ReqID: 1, OID: ObjectID{Pool: 1, Name: "img.0000042"}, Offset: 8192, Data: data}
	var frame []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame = AppendFrame(frame[:0], m)
	}
	_ = frame
}

func BenchmarkUnmarshalClientWrite4K(b *testing.B) {
	data := make([]byte, 4096)
	m := &ClientWrite{ReqID: 1, OID: ObjectID{Pool: 1, Name: "img.0000042"}, Offset: 8192, Data: data}
	frame := Marshal(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(frame); err != nil {
			b.Fatal(err)
		}
	}
}
