package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestUnmarshalGarbageNeverPanics feeds random frames to the decoder:
// every outcome must be a clean message or error, never a panic or a
// huge allocation.
func TestUnmarshalGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for i := 0; i < 20000; i++ {
		n := rng.Intn(256)
		buf := make([]byte, 5+n)
		rng.Read(buf)
		binary.LittleEndian.PutUint32(buf, uint32(n))
		// Half the time use a valid type byte so the decoder goes deep.
		if i%2 == 0 {
			buf[4] = byte(rng.Intn(int(TBackfillChunk)) + 1)
		}
		_, _ = Unmarshal(buf) // must not panic
	}
}

// TestDecodeTruncatedValidFrames truncates real frames at every length:
// decoding must error gracefully, never panic.
func TestDecodeTruncatedValidFrames(t *testing.T) {
	msgs := []Message{
		&ClientWrite{ReqID: 1, OID: ObjectID{Pool: 1, Name: "object-name"}, Offset: 4096, Data: make([]byte, 128)},
		&Repl{ReqID: 2, PG: 3, Op: Op{Kind: OpWrite, OID: ObjectID{Name: "x"}, Data: make([]byte, 64)}},
		&OplogChunk{ReqID: 1, Ops: []Op{{Kind: OpDelete, OID: ObjectID{Name: "y"}}}},
		&BackfillChunk{Objects: []BackfillObject{{OID: ObjectID{Name: "z"}, Data: make([]byte, 32)}}, Done: true},
	}
	for _, m := range msgs {
		frame := Marshal(m)
		for cut := 0; cut < len(frame); cut++ {
			truncated := make([]byte, cut)
			copy(truncated, frame[:cut])
			_, _ = Unmarshal(truncated) // must not panic
		}
	}
}

// TestReadMessageHostileStreams drives the stream reader through every
// malformed-input class a broken or malicious peer can produce: truncated
// headers, frame lengths past the cap, unknown type bytes, payloads cut
// off mid-frame, and item counts the payload cannot hold. Every case must
// return an error without panicking or allocating absurdly.
func TestReadMessageHostileStreams(t *testing.T) {
	frame := Marshal(&ClientWrite{ReqID: 7, OID: ObjectID{Pool: 1, Name: "obj"}, Offset: 512, Data: make([]byte, 64)})

	t.Run("truncated header", func(t *testing.T) {
		for cut := 0; cut < 5; cut++ {
			if _, _, err := ReadMessage(bytes.NewReader(frame[:cut]), nil); err == nil {
				t.Fatalf("header cut at %d must error", cut)
			}
		}
	})

	t.Run("oversize length", func(t *testing.T) {
		var hdr [5]byte
		binary.LittleEndian.PutUint32(hdr[:4], MaxFrame+1)
		hdr[4] = byte(TClientWrite)
		_, _, err := ReadMessage(bytes.NewReader(hdr[:]), nil)
		if err == nil || !strings.Contains(err.Error(), "exceeds max") {
			t.Fatalf("oversize frame: %v", err)
		}
	})

	t.Run("unknown type", func(t *testing.T) {
		var hdr [5]byte
		hdr[4] = 0xEE
		_, _, err := ReadMessage(bytes.NewReader(hdr[:]), nil)
		if err == nil || !strings.Contains(err.Error(), "unknown message type") {
			t.Fatalf("unknown type: %v", err)
		}
	})

	t.Run("mid-payload EOF", func(t *testing.T) {
		for _, keep := range []int{5, 6, len(frame) - 1} {
			_, _, err := ReadMessage(bytes.NewReader(frame[:keep]), nil)
			if err == nil {
				t.Fatalf("payload cut at %d must error", keep)
			}
		}
	})

	t.Run("hostile item count", func(t *testing.T) {
		// A ReplBatch claiming 2^20 items in a 4-byte payload must fail the
		// plausibility check instead of reserving a gigabyte of items.
		payload := binary.LittleEndian.AppendUint32(nil, 1<<20)
		hostile := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
		hostile = append(hostile, byte(TReplBatch))
		hostile = append(hostile, payload...)
		if _, _, err := ReadMessage(bytes.NewReader(hostile), nil); err == nil {
			t.Fatal("implausible item count must error")
		}
		if _, err := Unmarshal(hostile); err == nil {
			t.Fatal("implausible item count must error via Unmarshal too")
		}
	})
}

// TestReadMessageStreamFuzz interleaves valid frames with garbage tails on
// one stream, reusing the scratch buffer across reads the way the
// messenger's receive loop does. Valid prefixes must decode; the garbage
// must surface as an error, never a panic.
func TestReadMessageStreamFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 300; round++ {
		var stream bytes.Buffer
		var want []Message
		for i := 0; i < 1+rng.Intn(4); i++ {
			data := make([]byte, rng.Intn(300))
			rng.Read(data)
			m := &ClientWrite{ReqID: uint64(round*10 + i), OID: ObjectID{Pool: 2, Name: "s"}, Data: data}
			want = append(want, m)
			if err := WriteMessage(&stream, m); err != nil {
				t.Fatal(err)
			}
		}
		garbage := make([]byte, rng.Intn(64))
		rng.Read(garbage)
		stream.Write(garbage)

		var scratch []byte
		r := bytes.NewReader(stream.Bytes())
		for i, w := range want {
			var m Message
			var err error
			m, scratch, err = ReadMessage(r, scratch)
			if err != nil {
				t.Fatalf("round %d frame %d: %v", round, i, err)
			}
			if !reflect.DeepEqual(m, w) {
				t.Fatalf("round %d frame %d: decoded %+v want %+v", round, i, m, w)
			}
		}
		// The garbage tail must end in an error (or a clean EOF when the
		// random bytes happen to parse), never a panic or an endless loop.
		for {
			_, scratch, _ = ReadMessage(r, scratch)
			if r.Len() == 0 {
				break
			}
		}
	}
}

// TestDecodedMessageDoesNotAliasScratch pins the decoder's copy
// discipline: a message decoded via ReadMessage must stay intact after
// the scratch buffer is reused for the next frame and clobbered. This is
// what makes releasing pooled frames right after decode safe.
func TestDecodedMessageDoesNotAliasScratch(t *testing.T) {
	first := bytes.Repeat([]byte{0xAA}, 1024)
	second := bytes.Repeat([]byte{0xBB}, 1024)
	var stream bytes.Buffer
	for _, data := range [][]byte{first, second} {
		if err := WriteMessage(&stream, &ClientWrite{OID: ObjectID{Name: "alias"}, Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(stream.Bytes())
	m1, scratch, err := ReadMessage(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadMessage(r, scratch); err != nil {
		t.Fatal(err)
	}
	for i := range scratch[:cap(scratch)] {
		scratch[:cap(scratch)][i] = 0xCC
	}
	w1 := m1.(*ClientWrite)
	if !bytes.Equal(w1.Data, first) {
		t.Fatal("first message's data changed after scratch reuse: decoder aliased the buffer")
	}
	if w1.OID.Name != "alias" {
		t.Fatal("first message's name changed after scratch reuse")
	}
}

// TestReplBatchRoundTrip covers the batched replication frame end to end,
// including empty-data delete ops mixed with writes.
func TestReplBatchRoundTrip(t *testing.T) {
	in := &ReplBatch{Items: []Repl{
		{ReqID: 1, PG: 4, Epoch: 9, Op: Op{Kind: OpWrite, OID: ObjectID{Pool: 1, Name: "a"}, Offset: 4096, Length: 3, Version: 7, Seq: 11, Data: []byte{1, 2, 3}}},
		{ReqID: 2, PG: 4, Epoch: 9, Op: Op{Kind: OpDelete, OID: ObjectID{Pool: 1, Name: "b"}, Seq: 12, Data: []byte{}}},
		{ReqID: 3, PG: 5, Epoch: 9, Op: Op{Kind: OpWrite, OID: ObjectID{Pool: 2, Name: "c"}, Data: bytes.Repeat([]byte{7}, 4096), Length: 4096, Seq: 13}},
	}}
	out, err := Unmarshal(Marshal(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
	// The decoded copy must not share memory with a reused encode buffer.
	frame := Marshal(in)
	out2, err := Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		frame[i] = 0xDD
	}
	if !reflect.DeepEqual(in, out2) {
		t.Fatal("decoded batch aliases the frame buffer")
	}
}
