package wire

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// TestUnmarshalGarbageNeverPanics feeds random frames to the decoder:
// every outcome must be a clean message or error, never a panic or a
// huge allocation.
func TestUnmarshalGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for i := 0; i < 20000; i++ {
		n := rng.Intn(256)
		buf := make([]byte, 5+n)
		rng.Read(buf)
		binary.LittleEndian.PutUint32(buf, uint32(n))
		// Half the time use a valid type byte so the decoder goes deep.
		if i%2 == 0 {
			buf[4] = byte(rng.Intn(int(TBackfillChunk)) + 1)
		}
		_, _ = Unmarshal(buf) // must not panic
	}
}

// TestDecodeTruncatedValidFrames truncates real frames at every length:
// decoding must error gracefully, never panic.
func TestDecodeTruncatedValidFrames(t *testing.T) {
	msgs := []Message{
		&ClientWrite{ReqID: 1, OID: ObjectID{Pool: 1, Name: "object-name"}, Offset: 4096, Data: make([]byte, 128)},
		&Repl{ReqID: 2, PG: 3, Op: Op{Kind: OpWrite, OID: ObjectID{Name: "x"}, Data: make([]byte, 64)}},
		&OplogChunk{ReqID: 1, Ops: []Op{{Kind: OpDelete, OID: ObjectID{Name: "y"}}}},
		&BackfillChunk{Objects: []BackfillObject{{OID: ObjectID{Name: "z"}, Data: make([]byte, 32)}}, Done: true},
	}
	for _, m := range msgs {
		frame := Marshal(m)
		for cut := 0; cut < len(frame); cut++ {
			truncated := make([]byte, cut)
			copy(truncated, frame[:cut])
			_, _ = Unmarshal(truncated) // must not panic
		}
	}
}
