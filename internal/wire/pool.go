package wire

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Frame buffers travel from the sender that encodes a message to the
// transport goroutine that writes it out (or the receiver that decodes
// it), then return to a size-classed pool. Pooling them makes the
// steady-state send path allocation-free: the paper's analysis shows
// message processing CPU on the critical path, and per-message buffer
// churn is pure MP overhead.
//
// Size classes are powers of two from minFrameClass to maxFrameClass.
// Buffers above the largest class (rare: backfill/oplog chunks) are
// allocated fresh and never retained, so one oversized frame cannot pin
// megabytes of memory for the life of a connection.
const (
	minFrameClass = 9  // 512 B: covers acks, replies, heartbeats
	maxFrameClass = 18 // 256 KiB: covers any 4 KB-write era frame with room
)

// MaxPooledFrame is the largest buffer capacity the frame pool retains.
const MaxPooledFrame = 1 << maxFrameClass

// Frame is a pooled, framed message buffer. B holds the encoded bytes;
// the wrapper (rather than a bare slice) keeps sync.Pool round-trips
// allocation-free and survives append growth of B.
type Frame struct {
	B []byte
}

var framePools [maxFrameClass + 1]sync.Pool

// Frame-pool counters (atomic; see PoolStats).
var (
	poolGets   atomic.Uint64
	poolHits   atomic.Uint64
	poolPuts   atomic.Uint64
	poolDrops  atomic.Uint64 // oversized buffers not retained on Put
	poolJumbos atomic.Uint64 // Gets larger than the biggest class
)

// frameClass returns the pool class whose buffers hold at least n bytes.
func frameClass(n int) int {
	if n <= 1<<minFrameClass {
		return minFrameClass
	}
	c := bits.Len(uint(n - 1)) // ceil(log2 n)
	return c
}

// GetFrame returns a frame whose buffer has len 0 and capacity >= sizeHint.
// Callers encode into F.B with append and hand the frame to the transport,
// which releases it with PutFrame once the bytes are written (or decoded).
func GetFrame(sizeHint int) *Frame {
	poolGets.Add(1)
	if sizeHint > MaxPooledFrame {
		poolJumbos.Add(1)
		return &Frame{B: make([]byte, 0, sizeHint)}
	}
	c := frameClass(sizeHint)
	if v := framePools[c].Get(); v != nil {
		poolHits.Add(1)
		f := v.(*Frame)
		f.B = f.B[:0]
		return f
	}
	return &Frame{B: make([]byte, 0, 1<<c)}
}

// PutFrame returns a frame to its size class. Buffers that grew beyond the
// largest class are dropped, capping per-frame retention. Callers must not
// touch the frame after releasing it.
func PutFrame(f *Frame) {
	if f == nil {
		return
	}
	poolPuts.Add(1)
	c := cap(f.B)
	if c > MaxPooledFrame || c < 1<<minFrameClass {
		poolDrops.Add(1)
		return
	}
	// A buffer with capacity in [1<<k, 1<<(k+1)) files under class k, so a
	// Get for class k always receives at least 1<<k bytes of capacity.
	class := bits.Len(uint(c)) - 1
	f.B = f.B[:0]
	framePools[class].Put(f)
}

// PoolStats is a snapshot of the frame-pool counters.
type PoolStats struct {
	Gets   uint64 // GetFrame calls
	Hits   uint64 // Gets satisfied from a pool
	Puts   uint64 // PutFrame calls
	Drops  uint64 // Puts dropped for being outside the retained classes
	Jumbos uint64 // Gets above MaxPooledFrame (never pooled)
}

// HitRate returns hits/gets in [0,1], or 0 before any Get.
func (s PoolStats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// FramePoolStats snapshots the global frame-pool counters.
func FramePoolStats() PoolStats {
	return PoolStats{
		Gets:   poolGets.Load(),
		Hits:   poolHits.Load(),
		Puts:   poolPuts.Load(),
		Drops:  poolDrops.Load(),
		Jumbos: poolJumbos.Load(),
	}
}

// encoderPool recycles Encoders so AppendFrame does not heap-allocate one
// per message (passing *Encoder through the Message interface makes it
// escape).
var encoderPool = sync.Pool{New: func() any { return &Encoder{} }}
