// Package rebloc is a from-scratch Go reproduction of "Re-architecting
// Distributed Block Storage System for Improving Random Write
// Performance" (Oh et al., ICDCS 2021): a Ceph-like replicated block
// store whose write path is re-architected around three techniques —
// decoupled operation processing through an NVM operation log, prioritized
// thread control, and an in-place-update CPU-efficient object store.
//
// Layout:
//
//	internal/core       in-process cluster assembly (the public facade)
//	internal/osd        the OSD daemon: every architecture under test
//	internal/oplog      NVM operation log + index cache (DOP)
//	internal/sched      prioritized thread control primitives (PTC)
//	internal/store/cos  CPU-efficient object store (COS)
//	internal/store/...  baseline BlueStore model + from-scratch LSM KV
//	internal/...        monitor, client, rbd, crush, messenger, device, nvm
//	cmd/rebloc-*        daemons, CLI, and the benchmark harness
//	examples/           runnable walkthroughs
//
// The benchmarks in bench_test.go regenerate the paper's tables and
// figures; see DESIGN.md for the experiment inventory and EXPERIMENTS.md
// for paper-vs-measured results.
package rebloc
