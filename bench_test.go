package rebloc

import (
	"io"
	"os"
	"testing"

	"rebloc/internal/bench"
	"rebloc/internal/figures"
)

// benchOut prints figure tables under -v, stays quiet otherwise.
func benchOut() io.Writer {
	if testing.Verbose() {
		return os.Stdout
	}
	return io.Discard
}

// benchParams keeps the per-iteration cost of a whole-figure benchmark in
// the seconds range; run cmd/rebloc-bench with -scale for longer runs.
func benchParams() figures.Params {
	return figures.Params{Scale: 0.5, OSDs: 3, Jobs: 8, QueueDepth: 8, ImageMB: 32}
}

// BenchmarkFig1RooflineModes regenerates Figure 1: the roofline probes
// (Original, RTC-v1, RTC-v2, RTC-v3) under 4KB random writes.
func BenchmarkFig1RooflineModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := figures.Fig1(benchOut(), benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1HostWAF regenerates Table I: baseline write amplification.
func BenchmarkTable1HostWAF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := figures.Table1(benchOut(), benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7aRandWrite regenerates Figure 7(a): 4KB random writes,
// Original vs Proposed vs Ideal with CPU breakdowns.
func BenchmarkFig7aRandWrite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := figures.Fig7(benchOut(), benchParams(), bench.RandWrite); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7bRandRead regenerates Figure 7(b): 4KB random reads.
func BenchmarkFig7bRandRead(b *testing.B) {
	p := benchParams()
	p.ImageMB = 16 // the read figure pre-fills every block
	for i := 0; i < b.N; i++ {
		if err := figures.Fig7(benchOut(), p, bench.RandRead); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Ablation regenerates Table II: Original → +COS → +PTC →
// +DOP.
func BenchmarkTable2Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := figures.Table2(benchOut(), benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8WAF regenerates Figure 8: WAF of the baseline vs COS with
// and without pre-allocation and the NVM metadata cache.
func BenchmarkFig8WAF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := figures.Fig8(benchOut(), benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9LargeSeq regenerates Figure 9: 128KB sequential throughput
// scaling on profile-paced devices.
func BenchmarkFig9LargeSeq(b *testing.B) {
	p := benchParams()
	p.Scale = 0.25
	for i := 0; i < b.N; i++ {
		if err := figures.Fig9(benchOut(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10YCSB regenerates Figure 10: YCSB A/B/C/D/F.
func BenchmarkFig10YCSB(b *testing.B) {
	p := benchParams()
	p.Scale = 0.25
	for i := 0; i < b.N; i++ {
		if err := figures.Fig10(benchOut(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11PartitionScaling regenerates Figure 11: IOPS vs sharded
// partition count.
func BenchmarkFig11PartitionScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := figures.Fig11(benchOut(), benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12TailLatency regenerates Figure 12: p95 latency vs op-log
// flush threshold under a constant-rate mixed workload.
func BenchmarkFig12TailLatency(b *testing.B) {
	p := benchParams()
	p.Scale = 0.25
	for i := 0; i < b.N; i++ {
		if err := figures.Fig12(benchOut(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTransport compares in-process channels with loopback
// TCP for the proposed design (extension beyond the paper).
func BenchmarkAblationTransport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := figures.AblationTransport(benchOut(), benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationReplication sweeps the replication factor (extension
// beyond the paper).
func BenchmarkAblationReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := figures.AblationReplication(benchOut(), benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNonPriorityThreads sweeps the non-priority thread
// count at fixed partitions (extension beyond the paper).
func BenchmarkAblationNonPriorityThreads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := figures.AblationNonPriorityThreads(benchOut(), benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}
