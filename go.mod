module rebloc

go 1.22
