# Developer entry points. `make check` is the pre-commit gate: static
# analysis plus the race detector over the packages with the most
# cross-goroutine traffic (messenger send path, oplog flushers, OSD
# replication fan-out, scheduler primitives).

GO ?= go

RACE_PKGS = ./internal/messenger/... ./internal/oplog/... ./internal/osd/... ./internal/sched/...

.PHONY: check vet test race bench-msgr bench-oplog

check: vet race
	$(GO) test ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Messenger microbenchmarks: pipelined 4 KiB echo at queue depth 1/16/64
# plus the send-path allocation floor (expect ~0 allocs/op).
bench-msgr:
	$(GO) test -bench 'Echo4K|SendPath4K|AppendFramePooled' -benchtime 1s -run XXX ./internal/messenger/ ./internal/wire/

# Oplog microbenchmarks: the group-committed append path (expect 0
# allocs/op; persists/op < 1 at 8 appenders), the extent-index lookup,
# and the coalescing bottom half (expect storeops/entry << 1).
bench-oplog:
	$(GO) test -bench 'OplogAppend|OplogLookup|FlushCoalesced' -benchmem -benchtime 1s -run XXX ./internal/oplog/
