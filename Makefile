# Developer entry points. `make check` is the pre-commit gate: static
# analysis plus the race detector over the packages with the most
# cross-goroutine traffic (messenger send path, oplog flushers, OSD
# replication fan-out, scheduler primitives, the COS submit fan-out and
# the device layer it drives concurrently).

GO ?= go

RACE_PKGS = ./internal/messenger/... ./internal/oplog/... ./internal/osd/... ./internal/sched/... ./internal/store/... ./internal/device/... ./internal/readcache/... ./internal/qos/...

.PHONY: check vet test race chaos bench-msgr bench-oplog bench-cos bench-scale bench-scale-smoke bench-ycsb bench-mixed bench-ycsb-smoke bench-overload bench-overload-smoke bench-scrub bench-scrub-smoke

check: vet race
	$(GO) test ./...

# Seeded cluster fault-injection matrix (internal/chaos): every scenario
# spins up an in-proc cluster, drives a recorded workload through a fault
# schedule (crashes, torn device writes, dropped/duplicated frames, NVM
# corruption) and checks block-level history invariants. Failures print a
# deterministically reproducing seed:
#   go test ./internal/chaos -run 'TestScenarios/<name>' -chaos.seed=<seed>
chaos:
	$(GO) test -race -count=1 -timeout 600s ./internal/chaos

vet:
	$(GO) vet ./...
	@# The COS submit path is hot enough that fmt.Sprintf formatting shows
	@# up in profiles; object keys and region names are built by hand.
	@if grep -n 'fmt\.Sprintf' internal/store/cos/*.go | grep -v _test.go; then \
		echo 'vet: fmt.Sprintf is banned in the COS hot path (build keys with strconv/append)'; \
		exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)
	@# internal/core is too slow to race wholesale; race just the
	@# integrity paths (scrub daemon, read-repair, checksum plumbing).
	$(GO) test -race -count=1 -run 'Scrub|Cksum|ReadRepair|Integrity' ./internal/core/

# Messenger microbenchmarks: pipelined 4 KiB echo at queue depth 1/16/64
# plus the send-path allocation floor (expect ~0 allocs/op).
bench-msgr:
	$(GO) test -bench 'Echo4K|SendPath4K|AppendFramePooled' -benchtime 1s -run XXX ./internal/messenger/ ./internal/wire/

# Oplog microbenchmarks: the group-committed append path (expect 0
# allocs/op; persists/op < 1 at 8 appenders), the extent-index lookup,
# and the coalescing bottom half (expect storeops/entry << 1).
bench-oplog:
	$(GO) test -bench 'OplogAppend|OplogLookup|FlushCoalesced' -benchmem -benchtime 1s -run XXX ./internal/oplog/

# Per-core scaling sweep (paper Figure 11's core claim): GOMAXPROCS
# 1->N over 4 KiB random-write and 70/30 mixed benches, with the top-half
# shard count tracking the core count. Results belong in EXPERIMENTS.md.
# Add PPROF=dir to also capture cpu/mutex/block profiles, e.g.
#   make bench-scale PPROF=/tmp/prof && go tool pprof /tmp/prof/mutex.pprof
PPROF ?=
bench-scale:
	$(GO) run ./cmd/rebloc-bench -scale 2 $(if $(PPROF),-bench.pprof $(PPROF)) scale

# CI smoke: the same sweep capped at 2 cores with reduced iterations, so
# the sharded path is built and exercised on every PR without the cost of
# the full sweep.
bench-scale-smoke:
	$(GO) run ./cmd/rebloc-bench -scale 0.2 -cores 2 -osds 2 -image-mb 32 scale

# Read-cache benches (internal/figures rcache.go). bench-ycsb runs YCSB
# A/B/C (zipfian theta 0.99) over proposed+cache / proposed-nocache /
# original; bench-mixed runs the fio-style zipfian sweeps (100% read,
# 70/30, 50/50). Image sizing keeps the zipfian hot set within reach of
# the default per-OSD cache so the read-heavy rows show the cache's
# steady state; results belong in EXPERIMENTS.md.
bench-ycsb:
	$(GO) run ./cmd/rebloc-bench -image-mb 16 -jobs 4 ycsb-cache

bench-mixed:
	$(GO) run ./cmd/rebloc-bench -image-mb 4 -jobs 4 mixed

# CI smoke: one tiny pass over each cache bench so the figures and the
# cache counters stay wired on every PR.
bench-ycsb-smoke:
	$(GO) run ./cmd/rebloc-bench -scale 0.1 -osds 2 -image-mb 8 -jobs 2 ycsb-cache
	$(GO) run ./cmd/rebloc-bench -scale 0.1 -osds 2 -image-mb 8 -jobs 2 mixed

# Backpressure/QoS bench (internal/figures overload.go): N greedy
# tenants drive the cluster past saturation while one latency-sensitive
# tenant issues a trickle, QoS off vs on. With QoS on the occupancy
# ladder plus token-bucket admission must hold wrap stalls at zero while
# the weighted-fair bucket protects the light tenant's latency. Results
# belong in EXPERIMENTS.md.
bench-overload:
	$(GO) run ./cmd/rebloc-bench -jobs 3 -qd 8 -image-mb 24 overload

# CI smoke: a short pass so the admission ladder, the per-tenant
# accounting and the QoS-on/off comparison stay wired on every PR.
bench-overload-smoke:
	$(GO) run ./cmd/rebloc-bench -scale 0.15 -osds 2 -jobs 2 -qd 4 -image-mb 8 overload

# Data-integrity bench (internal/figures scrub.go): a 4 KiB 70/30
# zipfian workload with the scrub machinery idle vs full deep scrubs
# sweeping concurrently. The deep rows must complete whole-cluster
# passes inside the window while the foreground tail holds — scrub I/O
# is paced by its own token bucket. Results belong in EXPERIMENTS.md.
bench-scrub:
	$(GO) run ./cmd/rebloc-bench -image-mb 16 -jobs 4 scrub

# CI smoke: a short pass so the scrub pacing, the verified read path and
# the integrity counters stay wired on every PR.
bench-scrub-smoke:
	$(GO) run ./cmd/rebloc-bench -scale 0.15 -osds 2 -jobs 2 -image-mb 8 scrub

# COS submit-path microbenchmarks: serial per-op Submit vs one batched
# Submit per 128 ops across 1..16 partitions, plus prealloc and NVM
# metadata-cache variants. Watch dev-writes/op: batched submits collapse
# the data into one vectored submission per partition and persist each
# touched onode once.
bench-cos:
	$(GO) test -bench 'BenchmarkSubmit' -benchtime 1s -run XXX ./internal/store/cos/
