# Developer entry points. `make check` is the pre-commit gate: static
# analysis plus the race detector over the packages with the most
# cross-goroutine traffic (messenger send path, oplog flushers, OSD
# replication fan-out, scheduler primitives).

GO ?= go

RACE_PKGS = ./internal/messenger/... ./internal/oplog/... ./internal/osd/... ./internal/sched/...

.PHONY: check vet test race bench-msgr

check: vet race
	$(GO) test ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Messenger microbenchmarks: pipelined 4 KiB echo at queue depth 1/16/64
# plus the send-path allocation floor (expect ~0 allocs/op).
bench-msgr:
	$(GO) test -bench 'Echo4K|SendPath4K|AppendFramePooled' -benchtime 1s -run XXX ./internal/messenger/ ./internal/wire/
